"""Versioned on-disk statistics catalog.

The paper treats SafeBound's statistics as a build artifact measured by
its file size on disk (Sec 5); a production deployment needs those
artifacts *managed*: versioned per database, published atomically so a
reader can never observe a half-written archive, discoverable through a
manifest carrying build metadata, and hot-swappable into a running
server without downtime.

Layout on disk (one directory per logical database)::

    <root>/
      <database>/
        MANIFEST.json       # ordered version list + build metadata
        v000001.npz         # v1 save_stats archives, immutable once published
        v000002.sba         # arena (zero-copy mmap) archives

Versions publish in either stats format (``core/serialization.py``):
``"arena"`` — the default — writes the zero-copy mmap layout, which loads
in O(manifest) time and whose pages are shared read-only across every
process (and every pinned consumer) mapping the same version; ``"v1"``
keeps the compressed ``.npz`` object archive.  ``load`` sniffs the format
from the file, and the manifest digest is format-independent, so the two
interoperate freely within one version history.

Publishing writes the archive to a temporary name in the same directory,
``fsync``s it, and ``os.replace``s it into place, then rewrites the
manifest (and the generation stamp) the same way, fsyncing the directory
after each rename — atomic on POSIX *and* durable across a crash, so
concurrent readers always see either the old or the new catalog state,
never a torn one.

A crash (or an injected fault — see ``service/faults.py``) can still
leave debris behind: a stale ``incoming-*`` temp file, an orphan archive
whose manifest entry was never committed, or — on filesystems without
atomic rename semantics — a torn manifest or generation stamp.
:meth:`StatsCatalog.fsck` detects and repairs all of it: temp files are
removed, unreadable archives are quarantined (moved to ``quarantine/``
and dropped from the manifest), torn manifests are rebuilt from the
readable archives on disk, and the generation stamp is re-derived from
the repaired manifest.  Opening a catalog runs a conservative fsck pass
by default (temp files are only removed once they are old enough that no
live publish can still own them), and torn-manifest reads self-heal
through the same machinery, so a catalog wedged by a mid-publish crash
recovers without operator action.  ``python -m repro.service fsck`` is
the explicit CLI entry point.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..core.arena import ARENA_MAGIC, _aligned
from ..core.safebound import SafeBound, SafeBoundConfig
from ..core.serialization import STATS_FORMATS, load_stats, save_stats_with_digest
from ..core.stats_builder import SafeBoundStats
from ..db.database import Database
from ..db.query import Query
from ..estimators.base import CardinalityEstimator
from . import faults
from .faults import InjectedFault

__all__ = ["StatsVersion", "StatsCatalog", "CatalogBackedSafeBound", "FsckReport"]

_MANIFEST_NAME = "MANIFEST.json"
_QUARANTINE_DIR = "quarantine"
_ARCHIVE_RE = re.compile(r"^v(\d{6})\.(sba|npz)$")
# How old a temp file must be before the *open-time* fsck removes it: a
# concurrent publish legitimately owns younger ones (it writes
# ``incoming-*`` / ``*.incoming`` and renames them within moments).  The
# explicit CLI fsck runs with 0 — the operator asserts nothing is live.
_STALE_TMP_SECONDS = 60.0
# The arena-generation stamp published next to the manifest: a tiny file
# holding the latest version number.  Fork-pool workers (and other
# processes — or other hosts sharing the catalog over a filesystem) read
# it per batch as a cheap "did anything publish?" check, and only parse
# the manifest / re-open an archive on a mismatch.
_GENERATION_NAME = "GENERATION"


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """Durably commit a rename: fsync the containing directory.  Best
    effort — some filesystems refuse directory fsync; atomicity does not
    depend on it, only crash durability does."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str, site: str) -> None:
    """Write ``text`` to ``path`` via fsynced temp-file rename.

    Fault sites: ``{site}.write`` fails before anything lands on disk;
    ``{site}.torn`` commits *truncated* content to the final path and
    then raises — the on-disk shape a crash mid-write leaves on a
    filesystem without atomic rename, which is exactly what ``fsck``
    must detect and repair.
    """
    faults.fire(f"{site}.write")
    torn = faults.corrupt(f"{site}.torn", text, lambda t: t[: len(t) // 2])
    tmp = path.with_name(path.name + ".incoming")
    tmp.write_text(torn)
    _fsync_file(tmp)
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    if torn is not text:
        raise InjectedFault(f"{site}.torn", f"{path.name} torn mid-write")


def _tear_archive(path: Path):
    """The ``catalog.archive.torn`` corruption: truncate the committed
    archive to half its size and fail the publish."""
    size = path.stat().st_size
    with open(path, "rb+") as fh:
        fh.truncate(max(1, size // 2))
    raise InjectedFault("catalog.archive.torn", f"{path.name} torn mid-write")


def _archive_readable(path: Path) -> bool:
    """Cheaply verify an archive is structurally intact (no data load).

    Arena files are checked header-first: the JSON header must parse and
    every array it declares must lie within the file — a truncated
    arena fails the extent check.  v1 ``.npz`` archives are zip files,
    whose end-of-central-directory check catches truncation.
    """
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(ARENA_MAGIC))
            if magic == ARENA_MAGIC:
                fh.seek(8)
                header_len = int.from_bytes(fh.read(8), "little")
                if header_len <= 0 or 16 + header_len > size:
                    return False
                header = json.loads(fh.read(header_len).decode())
                data_start = _aligned(16 + header_len)
                import numpy as np

                for spec in header["arrays"].values():
                    need = spec["count"] * np.dtype(spec["dtype"]).itemsize
                    if data_start + spec["offset"] + need > size:
                        return False
                return True
        return zipfile.is_zipfile(str(path))
    except Exception:
        return False


@dataclass
class FsckReport:
    """What one :meth:`StatsCatalog.fsck` pass found and repaired."""

    root: str
    databases: list[str] = field(default_factory=list)
    removed_temp: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    dropped_versions: list[str] = field(default_factory=list)
    rebuilt_manifests: list[str] = field(default_factory=list)
    repaired_generations: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (
            self.removed_temp
            or self.quarantined
            or self.dropped_versions
            or self.rebuilt_manifests
            or self.repaired_generations
        )

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "databases": self.databases,
            "clean": self.clean,
            "removed_temp": self.removed_temp,
            "quarantined": self.quarantined,
            "dropped_versions": self.dropped_versions,
            "rebuilt_manifests": self.rebuilt_manifests,
            "repaired_generations": self.repaired_generations,
        }


@dataclass(frozen=True)
class StatsVersion:
    """One published statistics version of one database.

    ``metadata`` carries build provenance: the content digest of the
    statistics (``stats_digest``) plus, for parallel builds, the worker /
    shard configuration that produced them — the digest is what lets an
    operator verify that a parallel build matches its serial reference.
    """

    database: str
    version: int
    filename: str
    created_at: float
    file_bytes: int
    build_seconds: float
    num_sequences: int
    note: str = ""
    metadata: dict = field(default_factory=dict)
    # Stats archive layout; manifests written before the arena format
    # predate the field, and every such archive is a v1 ``.npz``.
    format: str = "v1"

    @property
    def label(self) -> str:
        return f"v{self.version:06d}"


class StatsCatalog:
    """A versioned statistics store over :func:`save_stats`/:func:`load_stats`.

    Loaded versions are cached with pin/evict semantics: a server pins the
    version it serves (immune to eviction); unpinned versions are evicted
    least-recently-loaded beyond ``max_loaded``.
    """

    def __init__(
        self, root: str | Path, max_loaded: int = 4, fsck_on_open: bool = True
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_loaded = max_loaded
        self._lock = threading.RLock()
        self._loaded: OrderedDict[tuple[str, int], SafeBoundStats] = OrderedDict()
        self._pins: dict[tuple[str, int], int] = {}
        self.last_fsck: FsckReport | None = None
        if fsck_on_open:
            # Conservative pass: quarantine torn versions, rebuild torn
            # manifests, but only remove temp files old enough that no
            # live publish from another process can still own them.
            self.fsck(stale_tmp_seconds=_STALE_TMP_SECONDS)

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------
    def _db_dir(self, database: str) -> Path:
        return self.root / database

    def _manifest_path(self, database: str) -> Path:
        return self._db_dir(database) / _MANIFEST_NAME

    def _read_entries_raw(self, database: str) -> list[dict] | None:
        """The manifest's version list, or None when the manifest exists
        but is torn/unparseable.  Raises nothing for garbage content —
        healing is the caller's job."""
        path = self._manifest_path(database)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return []
        try:
            versions = json.loads(text)["versions"]
        except (ValueError, KeyError, TypeError):
            return None
        return versions if isinstance(versions, list) else None

    def _read_entries(self, database: str) -> list[dict]:
        faults.fire("catalog.manifest.read")
        entries = self._read_entries_raw(database)
        if entries is None:
            # A torn manifest (crash mid-write on a filesystem without
            # atomic rename, or an injected tear).  Self-heal: rebuild it
            # from the readable archives on disk, quarantining the rest,
            # then re-read.  Deterministic from disk state, so concurrent
            # healers (e.g. several fork workers) converge benignly.
            with self._lock:
                report = FsckReport(root=str(self.root), databases=[database])
                self._fsck_database(database, report, stale_tmp_seconds=_STALE_TMP_SECONDS)
                self.last_fsck = report
            entries = self._read_entries_raw(database)
            if entries is None:
                raise InjectedFault(
                    "catalog.manifest", f"manifest of {database!r} unrecoverable"
                )
        return entries

    def _write_entries(self, database: str, entries: list[dict]) -> None:
        path = self._manifest_path(database)
        _atomic_write_text(
            path,
            json.dumps({"database": database, "versions": entries}, indent=2),
            site="catalog.manifest",
        )
        # Stamp the generation *after* the manifest: a reader that sees
        # the new generation is guaranteed to find the version it
        # advertises already published.
        self._write_generation(database, entries[-1]["version"] if entries else 0)

    def _generation_path(self, database: str) -> Path:
        return self._db_dir(database) / _GENERATION_NAME

    def _write_generation(self, database: str, generation: int) -> None:
        _atomic_write_text(
            self._generation_path(database), f"{generation}\n", site="catalog.generation"
        )

    def generation(self, database: str) -> int:
        """The published generation of ``database``: the latest version
        number, read from the generation stamp (O(one tiny file read),
        no manifest parse).  Catalogs written before the stamp existed
        fall back to the manifest; 0 means nothing published."""
        faults.fire("catalog.generation.read")
        try:
            return int(self._generation_path(database).read_text())
        except FileNotFoundError:
            entries = self._read_entries(database)
            return entries[-1]["version"] if entries else 0
        except ValueError:
            # A torn/garbage stamp must not wedge serving — fall back to
            # the manifest, which publish writes atomically.
            entries = self._read_entries(database)
            return entries[-1]["version"] if entries else 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def databases(self) -> list[str]:
        with self._lock:
            return sorted(
                d.name for d in self.root.iterdir() if (d / _MANIFEST_NAME).exists()
            )

    def versions(self, database: str) -> list[StatsVersion]:
        with self._lock:
            return [
                StatsVersion(database=database, **entry)
                for entry in self._read_entries(database)
            ]

    def latest(self, database: str) -> StatsVersion | None:
        versions = self.versions(database)
        return versions[-1] if versions else None

    def publish(
        self,
        database: str,
        stats: SafeBoundStats,
        note: str = "",
        metadata: dict | None = None,
        stats_format: str = "arena",
    ) -> StatsVersion:
        """Atomically publish ``stats`` as the next version of ``database``.

        ``stats_format`` picks the archive layout (``"arena"`` by default:
        zero-copy mmap serving).  The manifest entry always records the
        statistics' *format-independent* content digest — the same store
        published as v1 and as an arena carries the same digest — plus the
        format; ``metadata`` adds caller context (e.g. the parallel-build
        worker and shard configuration that produced the archive).
        """
        if stats_format not in STATS_FORMATS:
            raise ValueError(f"stats_format must be one of {STATS_FORMATS}")
        with self._lock:
            directory = self._db_dir(database)
            directory.mkdir(parents=True, exist_ok=True)
            entries = self._read_entries(database)
            version = entries[-1]["version"] + 1 if entries else 1
            suffix = "sba" if stats_format == "arena" else "npz"
            filename = f"v{version:06d}.{suffix}"
            incoming = directory / f"incoming-{filename}"
            faults.fire("catalog.archive.write")
            file_bytes, digest = save_stats_with_digest(
                stats, str(incoming), stats_format=stats_format
            )
            _fsync_file(incoming)
            faults.fire("catalog.archive.replace")
            os.replace(incoming, directory / filename)
            _fsync_dir(directory)
            # Injected tear: truncate the just-committed archive and fail
            # the publish — the manifest never records it, fsck must
            # quarantine it.
            faults.corrupt("catalog.archive.torn", directory / filename, _tear_archive)
            entry = {
                "version": version,
                "filename": filename,
                "created_at": time.time(),
                "file_bytes": file_bytes,
                "build_seconds": stats.build_seconds,
                "num_sequences": stats.num_sequences(),
                "note": note,
                "format": stats_format,
                "metadata": {"stats_digest": digest, **(metadata or {})},
            }
            self._write_entries(database, entries + [entry])
            return StatsVersion(database=database, **entry)

    def version_info(self, database: str, version: int | None = None) -> StatsVersion:
        """The manifest entry of one version (latest when ``version`` is
        None); raises :class:`LookupError` for unknown versions."""
        versions = self.versions(database)
        if not versions:
            raise LookupError(f"no published statistics for {database!r}")
        if version is None:
            return versions[-1]
        for v in versions:
            if v.version == version:
                return v
        raise LookupError(f"{database!r} has no version {version}")

    def archive_path(self, entry: StatsVersion) -> Path:
        return self._db_dir(entry.database) / entry.filename

    def load(
        self, database: str, version: int | None = None, fresh: bool = False
    ) -> SafeBoundStats:
        """Load a published version (the latest when ``version`` is None),
        through the bounded loaded-version cache.

        Cached objects are shared — treat them as immutable.  A consumer
        that intends to *mutate* the statistics (attach update tracking,
        absorb inserts/deletes) must pass ``fresh=True`` for a private
        from-disk copy that bypasses the cache entirely; otherwise its
        mutations would alias into every other reader of that version.
        """
        with self._lock:
            if version is None:
                latest = self.latest(database)
                if latest is None:
                    raise LookupError(f"no published statistics for {database!r}")
                version = latest.version
            key = (database, version)
            if not fresh:
                cached = self._loaded.get(key)
                if cached is not None:
                    self._loaded.move_to_end(key)
                    return cached
            entry = next(
                (e for e in self._read_entries(database) if e["version"] == version),
                None,
            )
            if entry is None:
                raise LookupError(f"{database!r} has no version {version}")
            stats = load_stats(str(self._db_dir(database) / entry["filename"]))
            if not fresh:
                self._loaded[key] = stats
                self._evict()
            return stats

    def pin(self, database: str, version: int) -> SafeBoundStats:
        """Load and pin a version: pinned versions survive eviction.

        The pin is registered *before* the load: ``load`` evicts beyond
        ``max_loaded`` as part of inserting into the cache, and without
        the pre-registration it could evict the very version being pinned
        (every older entry being pinned is enough) — leaving a version
        that is pinned yet absent from the cache, so later loads re-read
        it from disk and ``unpin`` can strand other entries past
        ``max_loaded``.
        """
        with self._lock:
            key = (database, version)
            self._pins[key] = self._pins.get(key, 0) + 1
            try:
                return self.load(database, version)
            except BaseException:
                count = self._pins.get(key, 0) - 1
                if count <= 0:
                    self._pins.pop(key, None)
                else:
                    self._pins[key] = count
                raise

    def unpin(self, database: str, version: int) -> None:
        with self._lock:
            key = (database, version)
            count = self._pins.get(key, 0) - 1
            if count <= 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count
            self._evict()

    def loaded_versions(self) -> list[tuple[str, int]]:
        with self._lock:
            return list(self._loaded)

    # ------------------------------------------------------------------
    # Crash repair
    # ------------------------------------------------------------------
    def fsck(
        self, database: str | None = None, *, stale_tmp_seconds: float = 0.0
    ) -> FsckReport:
        """Detect and repair crash debris; what was repaired, as a report.

        Per database: stale publish temp files (older than
        ``stale_tmp_seconds``) are removed; structurally unreadable
        archives are moved to ``quarantine/`` and their manifest entries
        dropped; readable archives the manifest never committed (a crash
        between archive rename and manifest write) are quarantined too —
        the manifest is the commit point, so an uncommitted publish never
        retroactively becomes visible; a torn manifest is rebuilt from
        the readable archives on disk; and the generation stamp is
        re-derived from the repaired manifest.  All repairs are
        deterministic functions of the on-disk state and are themselves
        atomic whole-file replaces, so concurrent healers converge.
        """
        with self._lock:
            report = FsckReport(root=str(self.root))
            if database is not None:
                names = [database]
            else:
                names = sorted(
                    d.name
                    for d in self.root.iterdir()
                    if d.is_dir() and d.name != _QUARANTINE_DIR
                )
            for name in names:
                report.databases.append(name)
                self._fsck_database(name, report, stale_tmp_seconds=stale_tmp_seconds)
            self.last_fsck = report
            return report

    def _fsck_database(
        self, database: str, report: FsckReport, *, stale_tmp_seconds: float
    ) -> None:
        directory = self._db_dir(database)
        if not directory.is_dir():
            return
        now = time.time()
        # 1. Temp files from crashed publishes, once old enough that no
        #    live publish can still own them.
        for path in list(directory.iterdir()):
            name = path.name
            if not (name.startswith("incoming-") or name.endswith(".incoming")):
                continue
            try:
                if now - path.stat().st_mtime < stale_tmp_seconds:
                    continue
                path.unlink()
            except OSError:
                continue
            report.removed_temp.append(f"{database}/{name}")
        # 2. Verify every archive; quarantine the unreadable ones.
        readable: dict[int, str] = {}
        for path in sorted(directory.iterdir()):
            match = _ARCHIVE_RE.match(path.name)
            if match is None:
                continue
            if _archive_readable(path):
                readable[int(match.group(1))] = path.name
            else:
                self._quarantine(directory, path.name, report, database)
        # 3. Reconcile the manifest against the readable archives.
        entries = self._read_entries_raw(database)
        if entries is None:
            # Torn manifest: rebuild it from what survives on disk.
            entries = []
            for version in sorted(readable):
                filename = readable[version]
                stat = (directory / filename).stat()
                entries.append(
                    {
                        "version": version,
                        "filename": filename,
                        "created_at": stat.st_mtime,
                        "file_bytes": stat.st_size,
                        "build_seconds": 0.0,
                        "num_sequences": 0,
                        "note": "fsck-recovered",
                        "format": "arena" if filename.endswith(".sba") else "v1",
                        "metadata": {"fsck_recovered": True},
                    }
                )
            self._write_manifest_only(database, entries)
            report.rebuilt_manifests.append(database)
        else:
            kept = []
            for entry in entries:
                if readable.get(entry.get("version")) == entry.get("filename"):
                    kept.append(entry)
                else:
                    label = entry.get("filename") or f"v{entry.get('version')}"
                    report.dropped_versions.append(f"{database}/{label}")
                    self._loaded.pop((database, entry.get("version")), None)
            # Readable archives the manifest never committed: quarantine.
            committed = {entry["version"] for entry in kept}
            for version, filename in readable.items():
                if version not in committed:
                    self._quarantine(directory, filename, report, database)
                    self._loaded.pop((database, version), None)
            if len(kept) != len(entries):
                self._write_manifest_only(database, kept)
            entries = kept
        # 4. Re-derive the generation stamp from the repaired manifest.
        if self._manifest_path(database).exists():
            expected = entries[-1]["version"] if entries else 0
            stamp = self._generation_path(database)
            try:
                current = int(stamp.read_text())
            except (OSError, ValueError):
                current = None
            if current != expected:
                _atomic_write_text(stamp, f"{expected}\n", site="catalog.fsck")
                report.repaired_generations.append(database)

    def _quarantine(
        self, directory: Path, filename: str, report: FsckReport, database: str
    ) -> None:
        qdir = directory / _QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        os.replace(directory / filename, qdir / filename)
        report.quarantined.append(f"{database}/{filename}")

    def _write_manifest_only(self, database: str, entries: list[dict]) -> None:
        """An fsck repair write: same atomic shape as ``_write_entries``
        but under the ``catalog.fsck`` fault site, so chaos plans tearing
        publish writes cannot wedge the healer, and without the
        generation re-stamp (fsck derives that separately)."""
        _atomic_write_text(
            self._manifest_path(database),
            json.dumps({"database": database, "versions": entries}, indent=2),
            site="catalog.fsck",
        )

    def _evict(self) -> None:
        excess = len(self._loaded) - self.max_loaded
        if excess <= 0:
            return
        for key in [k for k in self._loaded if k not in self._pins]:
            del self._loaded[key]
            excess -= 1
            if excess == 0:
                break


class CatalogBackedSafeBound(CardinalityEstimator):
    """SafeBound served out of a :class:`StatsCatalog`, with hot swap.

    Satisfies the harness's :class:`CardinalityEstimator` protocol:
    ``build`` runs the offline phase *and publishes* the result, while the
    online methods delegate to the currently pinned version.  ``refresh``
    atomically swaps in the latest published version — in-flight estimates
    finish on the version they started with; later requests see the new
    one.  Between republish cycles, ``apply_insert``/``apply_delete`` keep
    the served version valid through the padding machinery in ``core``.
    """

    name = "SafeBound(catalog)"

    def __init__(
        self,
        catalog: StatsCatalog,
        database: str,
        config: SafeBoundConfig | None = None,
        stats_format: str = "arena",
    ) -> None:
        super().__init__()
        self.catalog = catalog
        self.database = database
        self.config = config or SafeBoundConfig()
        self.stats_format = stats_format
        self._lock = threading.Lock()
        # Serialises whole build/refresh cycles (publish-check, pin, swap,
        # unpin).  Without it, two concurrent refreshes both pin the new
        # version and only one pin is ever released, leaking loaded stats.
        # Separate from ``_lock`` so estimates are never blocked on disk IO.
        self._swap_lock = threading.Lock()
        self._safebound: SafeBound | None = None
        self._version: int | None = None
        self.last_refresh_error: Exception | None = None
        # When set, every ``apply_insert`` publishes the freshly padded
        # statistics as a new catalog version (:meth:`publish_snapshot`)
        # before returning — i.e. before the caller makes the inserted
        # rows visible.  The fork-pool server flips this on at start():
        # padding applied here lives in *this process's* memory, and
        # without a publish the pool workers (which re-check only the
        # catalog's generation stamp) would keep serving their forked,
        # unpadded statistics over the enlarged database until the next
        # recompress-and-republish — an underestimation window the ingest
        # ordering contract forbids.
        self.publish_pad_snapshots = False
        self.snapshot_publishes = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int | None:
        return self._version

    def _current(self) -> SafeBound:
        with self._lock:
            if self._safebound is None:
                raise RuntimeError(
                    "no statistics loaded: call build(db) or refresh() first"
                )
            return self._safebound

    # ------------------------------------------------------------------
    def build(self, db: Database) -> None:
        """Offline phase: build, publish to the catalog, and serve.

        The just-built in-memory statistics are served directly; the
        published archive is byte-identical to them (``save_stats`` is a
        pure function of the stats), so there is no need to round-trip
        through disk here — ``refresh`` and cold starts do that.
        """
        sb = SafeBound(self.config)
        sb.build(db)
        with self._swap_lock:
            published = self.catalog.publish(
                self.database,
                sb.stats,
                note="build",
                metadata=self.build_metadata(),
                stats_format=self.stats_format,
            )
            with self._lock:
                self._safebound = sb
                self._version = published.version
        self.build_seconds = sb.build_seconds

    def build_metadata(self) -> dict:
        """Build-parallelism provenance recorded with every publish."""
        return {
            "build_workers": self.config.build_workers,
            "build_shard_rows": self.config.build_shard_rows,
            "build_pool": self.config.build_pool,
        }

    def refresh(self, db: Database | None = None) -> bool:
        """Hot-swap to the latest published version, if newer.

        Pass ``db`` to (re-)attach update tracking (the frequency counters
        are not part of the published archive) — it is attached even when
        the version is already current, so a trackerless swap done by the
        server's poll gets repaired by the ingest's own refresh call.
        Returns True when a swap happened.

        The estimator owns a private from-disk copy of the version it
        serves (``fresh=True``): it mutates those statistics on every
        ``apply_insert``/``apply_delete``, which must never alias into the
        catalog's shared read-only cache.
        """
        with self._swap_lock:
            latest = self.catalog.latest(self.database)
            if latest is None or latest.version == self._version:
                self._ensure_tracking(db)
                return False
            stats = self.catalog.load(self.database, latest.version, fresh=True)
            sb = SafeBound(self.config)
            sb.stats = stats
            if db is not None:
                sb.attach_update_tracking(db)
            with self._lock:
                self._safebound = sb
                self._version = latest.version
            return True

    def publish_snapshot(self, note: str = "pad snapshot") -> StatsVersion:
        """Publish the *currently served, in-memory* statistics as a new
        catalog version and adopt its version number in place — no reload.

        Unlike :meth:`UpdateIngest.republish` this does **not** rebuild:
        the archive is a serialization of the live (padded) statistics,
        so it is cheap relative to a recompression and, crucially, it
        carries the padding counters — ``pending_inserts`` survives a
        save/load cycle — which is what makes a re-opened copy in another
        process exactly as sound as the parent's in-memory view.  The
        served object is untouched (its frequency counters and tighter
        self-recompressed CDSs stay live); only ``version`` advances, so
        the parent's own refresh poll sees nothing to swap while every
        generation-handshake reader re-opens the padded version.
        """
        with self._swap_lock:
            sb = self._current()
            published = self.catalog.publish(
                self.database,
                sb.stats,
                note=note,
                metadata={**self.build_metadata(), "pad_snapshot": True},
                stats_format=self.stats_format,
            )
            with self._lock:
                self._version = published.version
            self.snapshot_publishes += 1
            return published

    def generation(self) -> int:
        """The catalog's published generation for this database (the
        latest version number; one tiny file read)."""
        return self.catalog.generation(self.database)

    def refresh_if_stale(self, db: Database | None = None) -> bool:
        """The cheap cross-process hot-swap check: compare the catalog's
        generation stamp against the served version and :meth:`refresh`
        only on a mismatch.  Fork-pool workers call this once per batch —
        the stamp read is a few microseconds, and for arena archives the
        re-open on mismatch is O(manifest) (the data pages are mmapped,
        shared, and untouched until used).

        Errors are swallowed (recorded in ``last_refresh_error``): a
        transient catalog IO failure must degrade to serving the current
        version, never fail a batch.
        """
        try:
            if self.generation() == self._version:
                self.last_refresh_error = None
                return False
            swapped = self.refresh(db)
            self.last_refresh_error = None
            return swapped
        except Exception as exc:
            self.last_refresh_error = exc
            return False

    def _ensure_tracking(self, db: Database | None) -> None:
        """Attach update tracking to the served stats if it is missing."""
        if db is None:
            return
        with self._lock:
            sb = self._safebound
        if sb is None or sb.stats is None:
            return
        missing = any(
            js.incremental is None
            for rel in sb.stats.relations.values()
            for js in rel.join_stats.values()
        )
        if missing:
            sb.attach_update_tracking(db)

    # ------------------------------------------------------------------
    def bound(self, query: Query) -> float:
        return self._current().bound(query)

    def estimate(self, query: Query) -> float:
        return self._current().bound(query)

    def estimate_batch(self, queries: list[Query]) -> list[float | None]:
        return self._current().estimate_batch(queries)

    def apply_insert(self, table: str, rows: dict) -> int:
        n = self._current().apply_insert(table, rows)
        if self.publish_pad_snapshots:
            # Publish *between* padding and the caller's append: any
            # cross-process reader that observes the enlarged database
            # necessarily starts its next batch after this generation
            # bump, so it re-opens padded statistics first.
            self.publish_snapshot(note=f"pad snapshot (+{n} rows into {table!r})")
        return n

    def apply_delete(self, table: str, rows: dict) -> int:
        return self._current().apply_delete(table, rows)

    def staleness(self) -> float:
        return self._current().staleness()

    def conditioning_cache_stats(self) -> dict:
        """Conditioning-cache counters of the currently served version
        (see :meth:`SafeBound.conditioning_cache_stats`)."""
        return self._current().conditioning_cache_stats()

    def memory_bytes(self) -> int:
        with self._lock:
            return self._safebound.memory_bytes() if self._safebound else 0

    def __repr__(self) -> str:
        return (
            f"CatalogBackedSafeBound({self.database!r}, "
            f"version={self._version}, root={str(self.catalog.root)!r})"
        )
