"""Network serving tier: a socket facade in front of :class:`EstimationServer`.

``generate_load`` drives the micro-batching server from in-process
threads, which measures the batching engine but not serving: no syscalls,
no codec, no scheduler handoff between client and server processes.  This
module puts a real wire between the two — a length-prefixed JSON protocol
(``service/wire.py``) served by a thread-per-connection front end — so
throughput numbers are end-to-end from separate client processes, the
shape a "millions of users" claim actually requires.

Verbs (the ``op`` field of each request frame):

* ``bound`` — one query, one bound.  Admission control surfaces as a
  typed response: ``{"ok": false, "error": "overloaded", "queue_depth":
  n, "max_queue": m, "retry_after_ms": t}`` — the client's cue to back
  off, never a dropped connection.
* ``bound_batch`` — several queries; per-item results so one overloaded
  slot does not discard the computed remainder.
* ``metrics`` — the server's full metrics snapshot.  In fork-pool mode
  this includes the ``observability`` block aggregated from the
  fork-shared registry, i.e. kernel/cache/swap counters flushed by every
  worker process.
* ``health`` — liveness plus the served statistics version and the
  catalog generation (the cross-process hot-swap handshake state).

Malformed input degrades per-connection: a bad frame gets a
``bad_request`` response (when the stream is still framed) and the
connection is closed; the listener and every other connection keep
serving.

:class:`NetClient` is the thin typed client; :func:`generate_load_net`
forks real client *processes* around it — the network twin of
``generate_load`` and what ``bench_net_throughput.py`` measures.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import socket
import threading
import time
from dataclasses import dataclass

from ..db.query import Query
from . import faults
from .server import EstimationServer, ServerOverloadedError
from .wire import (
    FrameError,
    MAX_FRAME_BYTES,
    encode_frame,
    query_from_wire,
    query_to_wire,
    read_frame,
    wire_to_float,
    write_frame,
)

__all__ = [
    "NetServer",
    "NetClient",
    "NetRequestError",
    "ConnectTimeoutError",
    "DeadlineExceededError",
    "RetryPolicy",
    "generate_load_net",
]


class NetRequestError(RuntimeError):
    """The server answered a request with a non-overload error."""

    def __init__(self, error: str, detail: str = "") -> None:
        super().__init__(f"{error}: {detail}" if detail else error)
        self.error = error
        self.detail = detail


class ConnectTimeoutError(ConnectionError):
    """No connection could be established within the deadline budget."""


class DeadlineExceededError(TimeoutError):
    """A retried call exhausted its deadline/attempt budget.

    ``last_error`` is the final underlying failure (reset, overload,
    server error) — the reason the budget ran out, preserved so callers
    and logs can tell a flaky network from a saturated server."""

    def __init__(self, message: str, last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry/timeout/backoff budget for one call.

    A call (``bound``/``bound_batch``/``metrics``/``health``) gets at
    most ``deadline_seconds`` of wall clock and ``max_attempts``
    attempts; between attempts the client sleeps an exponentially
    growing backoff (``initial_backoff_seconds`` ×
    ``backoff_multiplier``^attempt, capped at ``max_backoff_seconds``),
    raised to the server's ``retry_after_ms`` hint when an overload
    response carries one, and multiplied by up to ``1 + jitter`` of
    seeded randomness so a fleet of backing-off clients does not
    stampede in phase.  ``seed`` makes the jitter stream deterministic
    (chaos tests replay exactly); None seeds from the OS.

    Connection failures, resets and torn frames reconnect and retry;
    ``overloaded`` / ``unavailable`` / ``server_error`` responses retry;
    ``bad_request`` never retries — resending a malformed request cannot
    help.  A call that exhausts its budget raises
    :class:`DeadlineExceededError` carrying the last underlying failure.
    """

    max_attempts: int = 6
    deadline_seconds: float = 30.0
    initial_backoff_seconds: float = 0.01
    max_backoff_seconds: float = 1.0
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def backoff_seconds(
        self,
        attempt: int,
        rng: random.Random,
        retry_after_ms: float | None = None,
    ) -> float:
        base = min(
            self.max_backoff_seconds,
            self.initial_backoff_seconds * self.backoff_multiplier**attempt,
        )
        if retry_after_ms is not None:
            try:
                base = max(base, float(retry_after_ms) / 1000.0)
            except (TypeError, ValueError):
                pass
        if self.jitter > 0:
            base *= 1.0 + self.jitter * rng.random()
        return base


class NetServer:
    """A thread-per-connection socket front end over an estimation server.

    The protocol layer adds no policy of its own: admission control,
    batching, hot swap and metrics all live in the
    :class:`EstimationServer` (and below); this class only translates
    frames to ``submit`` calls and results/errors back to frames.
    """

    def __init__(
        self,
        server: EstimationServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        backlog: int = 128,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_frame_bytes = max_frame_bytes
        self.backlog = backlog
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._stopping = False
        self.connections_served = 0
        self.frame_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "NetServer":
        if self._listener is not None:
            raise RuntimeError("network server already started")
        listener = socket.create_server(
            (self.host, self.port), backlog=self.backlog, reuse_port=False
        )
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._stopping = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
            self._accept_thread = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping and listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                break  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                if self._stopping:
                    conn.close()
                    break
                self._connections.add(conn)
            self.connections_served += 1
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                try:
                    request = read_frame(conn, self.max_frame_bytes)
                except FrameError as exc:
                    # The stream may be unframed garbage at this point, so
                    # answer once (best-effort) and drop the connection.
                    self.frame_errors += 1
                    try:
                        write_frame(
                            conn,
                            {"ok": False, "error": "bad_request", "detail": str(exc)},
                        )
                    except OSError:
                        pass
                    return
                if request is None:
                    return  # client closed cleanly
                try:
                    response = self._handle(request)
                except Exception as exc:
                    # _handle answers expected failures as typed error
                    # responses; anything escaping it is a server bug,
                    # which the client must still hear about rather than
                    # see an unexplained connection close.
                    response = {
                        "ok": False,
                        "error": "server_error",
                        "detail": repr(exc),
                    }
                # Chaos sites on the response path: "net.connection.reset"
                # drops the connection before any reply byte (the
                # InjectedFault is an OSError — the handler below treats
                # it exactly like a real reset); "net.response.stall"
                # (a sleep spec) holds the reply past the client's read
                # timeout; "net.response.partial" sends a torn frame and
                # drops the connection mid-reply.
                faults.fire("net.connection.reset")
                faults.fire("net.response.stall")
                try:
                    blob = encode_frame(response)
                except FrameError as exc:
                    # The response exceeded the frame cap.  Encoding runs
                    # before any byte is sent, so the stream is still
                    # framed: answer with a small error frame, then drop
                    # the connection — mirroring the read-side handling.
                    self.frame_errors += 1
                    try:
                        write_frame(
                            conn,
                            {"ok": False, "error": "server_error", "detail": str(exc)},
                        )
                    except OSError:
                        pass
                    return
                sent = faults.corrupt(
                    "net.response.partial", blob, lambda b: b[: max(1, len(b) // 2)]
                )
                conn.sendall(sent)
                if sent is not blob:
                    return  # injected partial write: drop mid-frame
        except OSError:
            pass  # connection reset / server stopping
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "bound":
            return self._handle_bound(request)
        if op == "bound_batch":
            return self._handle_bound_batch(request)
        if op == "metrics":
            return {"ok": True, "metrics": self.server.metrics.snapshot()}
        if op == "health":
            return self._handle_health()
        return {"ok": False, "error": "bad_request", "detail": f"unknown op {op!r}"}

    def _overloaded(self, exc: ServerOverloadedError) -> dict:
        return {
            "ok": False,
            "error": "overloaded",
            "detail": str(exc),
            "queue_depth": getattr(exc, "queue_depth", None),
            "max_queue": getattr(exc, "max_queue", None),
            "retry_after_ms": 1.0,
        }

    def _handle_bound(self, request: dict) -> dict:
        try:
            query = query_from_wire(request.get("query"))
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        try:
            future = self.server.submit(query)
        except ServerOverloadedError as exc:
            return self._overloaded(exc)
        except RuntimeError as exc:  # server stopped / not accepting
            return {"ok": False, "error": "unavailable", "detail": str(exc)}
        try:
            return {"ok": True, "bound": future.result(self.request_timeout)}
        except Exception as exc:
            return {"ok": False, "error": "server_error", "detail": repr(exc)}

    def _handle_bound_batch(self, request: dict) -> dict:
        payload = request.get("queries")
        if not isinstance(payload, list):
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "'queries' must be a list",
            }
        try:
            queries = [query_from_wire(q) for q in payload]
        except (ValueError, TypeError, KeyError) as exc:
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        # Submit individually so the micro-batcher coalesces them with
        # whatever else is in flight; per-item status so one overloaded
        # admission does not discard the rest of the batch.
        slots: list[dict] = []
        futures = []
        for query in queries:
            try:
                futures.append((len(slots), self.server.submit(query)))
                slots.append({})
            except ServerOverloadedError as exc:
                slots.append(self._overloaded(exc))
            except RuntimeError as exc:
                slots.append({"ok": False, "error": "unavailable", "detail": str(exc)})
        for index, future in futures:
            try:
                slots[index] = {"ok": True, "bound": future.result(self.request_timeout)}
            except Exception as exc:
                slots[index] = {"ok": False, "error": "server_error", "detail": repr(exc)}
        return {"ok": True, "results": slots}

    def _handle_health(self) -> dict:
        estimator = self.server.estimator
        info = {
            "ok": True,
            "pid": os.getpid(),
            "num_workers": self.server.num_workers,
            "worker_pids": self.server.worker_pids(),
        }
        health = getattr(self.server, "health_status", None)
        if callable(health):
            # ok / degraded / stopped plus the liveness/readiness split
            # and the degradation reason — the supervisor-facing verdict.
            info.update(health())
        else:
            info["status"] = "ok" if self.server.running else "stopped"
        version = getattr(estimator, "version", None)
        if version is not None:
            info["version"] = version
        generation = getattr(estimator, "generation", None)
        if callable(generation):
            try:
                info["generation"] = generation()
            except Exception:
                pass
        return info


class NetClient:
    """A blocking request/response client for one server connection.

    Not thread-safe: a connection carries one in-flight request at a
    time, so give each client thread its own ``NetClient`` (they are one
    socket each).  Overload responses raise
    :class:`~repro.service.server.ServerOverloadedError`, so retry logic
    written against the in-process server works unchanged over the wire.

    Connecting is bounded: the constructor keeps retrying refused
    connections for at most ``connect_timeout`` seconds (default
    ``connect_retries × connect_retry_seconds``) and then raises
    :class:`ConnectTimeoutError` — a dead server fails the client fast
    with a typed error instead of spinning until some outer timeout.

    With a :class:`RetryPolicy`, every call runs under its deadline
    budget: connection failures and torn frames reconnect automatically,
    retryable error responses back off (honoring the server's
    ``retry_after_ms`` hint) and retry, and budget exhaustion raises
    :class:`DeadlineExceededError`.  ``retries``/``reconnects`` count
    what the policy actually did.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        connect_retries: int = 40,
        connect_retry_seconds: float = 0.25,
        connect_timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retry_seconds = connect_retry_seconds
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else max(1, connect_retries) * connect_retry_seconds
        )
        self.retry = retry
        self._rng = random.Random(retry.seed if retry is not None else None)
        self.retries = 0
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._connect(time.monotonic() + self.connect_timeout)

    def _connect(self, deadline: float) -> None:
        """Establish the connection, retrying refused attempts until
        ``deadline``; raises :class:`ConnectTimeoutError` past it."""
        last_error: Exception | None = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 and last_error is not None:
                raise ConnectTimeoutError(
                    f"could not connect to {self.host}:{self.port} within "
                    f"budget: {last_error}"
                ) from last_error
            try:
                sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=min(self.timeout, max(remaining, 0.001)),
                )
            except OSError as exc:
                last_error = exc
                time.sleep(
                    max(0.0, min(self.connect_retry_seconds, deadline - time.monotonic()))
                )
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.timeout)
            self._sock = sock
            return

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """One raw request/response exchange, no retries."""
        sock = self._sock
        if sock is None:
            raise ConnectionError("client is not connected")
        write_frame(sock, payload)
        response = read_frame(sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    @staticmethod
    def _error_for(response: dict) -> Exception:
        error = response.get("error", "unknown")
        if error == "overloaded":
            exc = ServerOverloadedError(response.get("detail", "server overloaded"))
            exc.queue_depth = response.get("queue_depth")
            exc.max_queue = response.get("max_queue")
            exc.retry_after_ms = response.get("retry_after_ms")
            return exc
        return NetRequestError(error, response.get("detail", ""))

    @classmethod
    def _raise_for(cls, response: dict) -> None:
        raise cls._error_for(response)

    _RETRYABLE_ERRORS = ("overloaded", "unavailable", "server_error")

    def _call(self, payload: dict) -> dict:
        """One request under the retry policy (or a single raw attempt).

        A successful response is returned; a non-retryable error
        response raises immediately; everything else — resets, torn
        frames, stalled reads past the socket timeout, retryable error
        responses — reconnects/backs off and retries until the policy's
        deadline or attempt budget runs out.
        """
        policy = self.retry
        if policy is None:
            response = self.request(payload)
            if not response.get("ok"):
                self._raise_for(response)
            return response
        deadline = time.monotonic() + policy.deadline_seconds
        last_error: Exception | None = None
        for attempt in range(policy.max_attempts):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            retry_after = None
            try:
                if self._sock is None:
                    self._connect(deadline)
                    self.reconnects += 1
                # The read must give up while budget remains: a stalled
                # response consumes this attempt, not the whole deadline.
                self._sock.settimeout(min(self.timeout, remaining))
                response = self.request(payload)
            except (FrameError, OSError) as exc:
                # OSError covers resets, refused reconnects and socket
                # timeouts; FrameError covers a frame torn mid-stream.
                # The connection state is unknown — drop and redial.
                last_error = exc
                self._drop_connection()
            else:
                if response.get("ok"):
                    if self._sock is not None:
                        self._sock.settimeout(self.timeout)
                    return response
                if response.get("error") not in self._RETRYABLE_ERRORS:
                    self._raise_for(response)
                last_error = self._error_for(response)
                retry_after = response.get("retry_after_ms")
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff_seconds(attempt, self._rng, retry_after)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self.retries += 1
            time.sleep(min(delay, remaining))
        raise DeadlineExceededError(
            f"{payload.get('op', 'request')!r} exhausted its retry budget "
            f"({policy.max_attempts} attempts / {policy.deadline_seconds:g}s): "
            f"{last_error!r}",
            last_error,
        )

    def bound(self, query: "Query | dict") -> float:
        """The bound of one query (a :class:`Query` or its wire form)."""
        wire = query if isinstance(query, dict) else query_to_wire(query)
        response = self._call({"op": "bound", "query": wire})
        return wire_to_float(response["bound"])

    def bound_batch(self, queries) -> list[float]:
        """Bounds for several queries; raises on the first failed slot."""
        wires = [q if isinstance(q, dict) else query_to_wire(q) for q in queries]
        response = self._call({"op": "bound_batch", "queries": wires})
        bounds = []
        for slot in response["results"]:
            if not slot.get("ok"):
                self._raise_for(slot)
            bounds.append(wire_to_float(slot["bound"]))
        return bounds

    def metrics(self) -> dict:
        return self._call({"op": "metrics"})["metrics"]

    def health(self) -> dict:
        return self._call({"op": "health"})


# ----------------------------------------------------------------------
# Multi-process load generation
# ----------------------------------------------------------------------
def _client_process(
    host: str,
    port: int,
    wires: list[dict],
    num_requests: int,
    worker: int,
    stride: int,
    concurrency: int,
    timeout: float,
    retry_rejected: bool,
    retry: RetryPolicy | None,
    barrier,
    out_queue,
) -> None:
    """One load-generating client process: ``concurrency`` threads, each
    with its own connection, serving this process's slice of the global
    request index space.

    Two gates keep the parent's timed window honest: every thread
    connects, then parks on ``connected`` (an in-process barrier) so the
    main thread only reaches the cross-process ``barrier`` once all
    connection setup — including slow in-thread connect retries — is
    done; no thread issues a request until ``start`` is set, which
    happens only after that global barrier trips.  So the window the
    parent times contains all requests and none of the connect cost.
    """
    results: list[tuple[int, float | None, str | None]] = []
    results_lock = threading.Lock()
    rejections = [0] * concurrency
    connected = threading.Barrier(concurrency + 1)
    start = threading.Event()

    def client_thread(thread_no: int) -> None:
        client: NetClient | None = None
        error: Exception | None = None
        try:
            # Derive a distinct deterministic jitter stream per thread so
            # a seeded policy still de-phases the fleet's backoffs.
            thread_retry = retry
            if retry is not None and retry.seed is not None:
                thread_retry = RetryPolicy(
                    **{
                        **retry.__dict__,
                        "seed": retry.seed + worker * 1009 + thread_no,
                    }
                )
            client = NetClient(host, port, timeout=timeout, retry=thread_retry)
        except Exception as exc:
            error = exc
        finally:
            connected.wait()
        if client is None:
            with results_lock:
                for i in range(
                    worker + thread_no * stride, num_requests, stride * concurrency
                ):
                    results.append((i, None, repr(error)))
            return
        start.wait()
        with client:
            for i in range(
                worker + thread_no * stride, num_requests, stride * concurrency
            ):
                wire = wires[i % len(wires)]
                try:
                    while True:
                        try:
                            value = client.bound(wire)
                            break
                        except ServerOverloadedError:
                            rejections[thread_no] += 1
                            if not retry_rejected:
                                value = None
                                break
                            time.sleep(0.001)
                    with results_lock:
                        results.append((i, value, None))
                except Exception as exc:
                    with results_lock:
                        results.append((i, None, repr(exc)))

    threads = [
        threading.Thread(target=client_thread, args=(t,), daemon=True)
        for t in range(concurrency)
    ]
    for t in threads:
        t.start()
    connected.wait()  # every thread holds a connection (or gave up)
    barrier.wait()  # every process is connected; parent starts the clock
    start.set()  # ... and only now may requests flow
    for t in threads:
        t.join()
    out_queue.put((worker, results, int(sum(rejections))))


def generate_load_net(
    host: str,
    port: int,
    queries: list,
    num_requests: int,
    *,
    processes: int = 2,
    concurrency: int = 4,
    timeout: float = 60.0,
    retry_rejected: bool = True,
    retry: RetryPolicy | None = None,
) -> dict:
    """Drive a :class:`NetServer` with ``num_requests`` single-query
    requests from ``processes`` separate client processes, each running
    ``concurrency`` connection threads (round-robin over ``queries``).

    The report matches :func:`~repro.service.server.generate_load` —
    results index-aligned with the request order, per-request errors, the
    rejection count — so benchmarks can put the two side by side; the
    difference is that every request here crossed a process boundary and
    a socket.  Queries are pre-encoded to their wire form in the parent,
    so child processes do no codec setup of their own.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    ctx = multiprocessing.get_context("fork")
    wires = [q if isinstance(q, dict) else query_to_wire(q) for q in queries]
    # Threads from all processes form one global round-robin: request i
    # goes to process (i mod processes), thread ((i // processes) mod
    # concurrency) of it.
    barrier = ctx.Barrier(processes + 1)
    out_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_client_process,
            args=(
                host,
                port,
                wires,
                num_requests,
                p,
                processes,
                concurrency,
                timeout,
                retry_rejected,
                retry,
                barrier,
                out_queue,
            ),
            daemon=True,
        )
        for p in range(processes)
    ]
    for w in workers:
        w.start()
    # Each child reaches this barrier only after all of its client
    # threads hold a connection, and releases them into the request loop
    # only after it trips — so the timed window starts after every
    # connection is established and before any request is sent.
    barrier.wait()
    started = time.perf_counter()
    results: list[float | None] = [None] * num_requests
    errors: dict[int, str] = {}
    rejections = 0
    for _ in workers:
        _worker, entries, rejected = out_queue.get(timeout=timeout + 60.0)
        rejections += rejected
        for index, value, error in entries:
            results[index] = value
            if error is not None:
                errors[index] = error
    elapsed = time.perf_counter() - started
    for w in workers:
        w.join(10.0)
    completed = sum(r is not None for r in results)
    return {
        "requests": num_requests,
        "completed": completed,
        "processes": processes,
        "concurrency": concurrency,
        "seconds": elapsed,
        "qps": completed / elapsed if elapsed > 0 else float("inf"),
        "rejections": rejections,
        "errors": dict(sorted(errors.items())),
        "results": results,
    }
