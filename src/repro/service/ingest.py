"""Live update ingest: row streams in, valid bounds out, republish behind.

The paper names incremental maintenance as its key future-work item
(Sec 6).  This module is the serving-side half of the answer built on
``core/updates.py``:

* :class:`UpdateIngest` applies inserts/deletes to the database *and* the
  live estimator in an order that keeps the never-underestimate guarantee
  even for concurrently served requests — statistics are padded *before*
  inserted rows become visible, and deleted rows disappear from the data
  *before* any counter shrinks;
* when padding overhead crosses a threshold, :meth:`UpdateIngest.republish`
  recompresses (a full offline rebuild against the current data), publishes
  the result as a new catalog version, and hot-swaps the estimator so
  serving continues without downtime;
* :class:`RepublishWorker` runs that cycle on a background thread.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..db.database import Database
from ..db.table import Table
from . import faults
from .catalog import CatalogBackedSafeBound, StatsVersion

__all__ = ["append_rows", "remove_rows", "UpdateIngest", "RepublishWorker"]


def append_rows(db: Database, table: str, rows: dict[str, np.ndarray]) -> None:
    """Append ``rows`` (column -> values) to a table of the column store."""
    current = db.table(table)
    if set(rows) != set(current.column_names):
        raise ValueError(
            f"insert into {table!r} must provide exactly columns "
            f"{sorted(current.column_names)}, got {sorted(rows)}"
        )
    merged = {
        name: np.concatenate((column, np.asarray(rows[name], dtype=column.dtype)))
        for name, column in current.columns.items()
    }
    db.tables[table] = Table(table, merged)


def remove_rows(db: Database, table: str, indices: np.ndarray) -> dict[str, np.ndarray]:
    """Drop rows by position; returns the removed rows (column -> values),
    exactly what the statistics layer needs to unregister them."""
    current = db.table(table)
    indices = np.asarray(indices, dtype=int)
    removed = {name: column[indices] for name, column in current.columns.items()}
    mask = np.ones(current.num_rows, dtype=bool)
    mask[indices] = False
    db.tables[table] = Table(table, {n: c[mask] for n, c in current.columns.items()})
    return removed


class UpdateIngest:
    """Applies a row-update stream to a database + live estimator pair.

    Ordering is what makes concurrent serving sound:

    * **insert**: pad the statistics first, then append the rows — a bound
      computed mid-update sees either the pre-insert world or a padded one,
      never unpadded stats over enlarged data;
    * **delete**: drop the rows first, then shrink the counters — a
      recompression triggered by the delete can only tighten to data that
      is already gone.

    The same ordering holds across processes: when the estimator's
    ``publish_pad_snapshots`` switch is on (the fork-pool server sets it
    at start), ``apply_insert`` publishes the padded statistics as a
    catalog version before returning — i.e. before ``append_rows`` makes
    the insert visible — so generation-handshake readers in other
    processes re-open padded statistics before they can observe the
    enlarged database.  Serving live ingest from a fork pool therefore
    requires a :class:`CatalogBackedSafeBound`; with a plain estimator
    the pool serves a frozen forked snapshot that no parent-side padding
    or swap ever reaches.

    With a catalog-backed estimator, :meth:`republish` closes the loop:
    rebuild against the current data, publish, and swap — all under the
    ingest lock so no update lands between the rebuild snapshot and the
    swap (which would silently vanish from the fresh version).
    """

    def __init__(
        self,
        db: Database,
        estimator,
        *,
        republish_overhead: float = 0.10,
    ) -> None:
        self.db = db
        self.estimator = estimator
        self.republish_overhead = republish_overhead
        self.republishes = 0
        self.inserted_rows = 0
        self.deleted_rows = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def insert(self, table: str, rows: dict[str, np.ndarray]) -> int:
        with self._lock:
            n = self.estimator.apply_insert(table, rows)
            append_rows(self.db, table, rows)
            self.inserted_rows += n
            return n

    def delete(self, table: str, indices: np.ndarray) -> int:
        with self._lock:
            removed = remove_rows(self.db, table, indices)
            n = self.estimator.apply_delete(table, removed)
            self.deleted_rows += n
            return n

    # ------------------------------------------------------------------
    @property
    def staleness(self) -> float:
        return self.estimator.staleness()

    def needs_republish(self) -> bool:
        return self.staleness > self.republish_overhead

    def republish(self, note: str = "republish") -> StatsVersion:
        """Recompress-and-republish: rebuild statistics from the current
        database, publish them as a new catalog version, and hot-swap the
        estimator.  Serving continues on the old version throughout the
        rebuild; only the update stream pauses."""
        estimator = self.estimator
        if not isinstance(estimator, CatalogBackedSafeBound):
            raise TypeError(
                "republish needs a CatalogBackedSafeBound estimator, got "
                f"{type(estimator).__name__}"
            )
        with self._lock:
            from ..core.safebound import SafeBound

            faults.fire("ingest.republish")
            fresh = SafeBound(estimator.config)
            fresh.build(self.db)
            version = estimator.catalog.publish(
                estimator.database,
                fresh.stats,
                note=note,
                metadata=estimator.build_metadata(),
                stats_format=estimator.stats_format,
            )
            # Swap through the catalog (round-tripping the archive) so the
            # served statistics are exactly what a cold start would load.
            estimator.refresh(self.db)
            self.republishes += 1
            return version

    def maybe_republish(self, note: str = "republish") -> StatsVersion | None:
        with self._lock:
            if not self.needs_republish():
                return None
            return self.republish(note)


class RepublishWorker(threading.Thread):
    """Background recompress-and-republish cycle.

    Polls the ingest's staleness every ``poll_seconds`` and republishes
    when it crosses the threshold — the serving path never blocks on it.

    A failed republish (catalog IO, an injected fault) must not kill the
    worker: serving stays valid on the padded statistics, so the right
    move is to record the error (``failures`` / ``last_error``), back off
    to ``failure_backoff_seconds``, and retry on a later poll — the cycle
    heals itself once the catalog does.
    """

    def __init__(
        self,
        ingest: UpdateIngest,
        poll_seconds: float = 0.05,
        failure_backoff_seconds: float = 0.5,
    ) -> None:
        super().__init__(name="republish-worker", daemon=True)
        self.ingest = ingest
        self.poll_seconds = poll_seconds
        self.failure_backoff_seconds = failure_backoff_seconds
        self.published: list[StatsVersion] = []
        self.failures = 0
        self.last_error: Exception | None = None
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.is_set():
            wait = self.poll_seconds
            try:
                version = self.ingest.maybe_republish(note="background republish")
            except Exception as exc:
                self.failures += 1
                self.last_error = exc
                wait = max(self.poll_seconds, self.failure_backoff_seconds)
            else:
                if version is not None:
                    self.published.append(version)
                    self.last_error = None
            self._stop_event.wait(wait)

    def stop(self, timeout: float | None = 30.0) -> None:
        """Signal the worker to exit and wait for it.  Idempotent, and
        safe on a worker that was never started — ``join`` on an
        unstarted thread raises ``RuntimeError``, which used to make
        error-path cleanup (construct, fail before ``start``, stop)
        blow up in the ``finally`` block."""
        self._stop_event.set()
        if self.ident is not None:
            self.join(timeout)
