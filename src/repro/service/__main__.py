"""``python -m repro.service`` — a runnable bound-serving demo.

Builds a synthetic movies/ratings database, publishes SafeBound statistics
to an on-disk catalog, starts the micro-batching estimation server, drives
it with a concurrent load generator, optionally streams inserts/deletes
through the live-ingest path (with a background recompress-and-republish
cycle the server hot-swaps), and prints a JSON metrics report.

The ``serve`` subcommand runs the same stack behind the network tier
(``service/net.py``): a socket server a separate ``client`` process
drives — the cross-process twin of the in-process demo, with optional
live ingest rounds republishing under load (which fork-pool workers pick
up through the catalog's generation handshake).  The ``client``
subcommand is the matching multi-process load generator.

The ``stats-info`` subcommand prints a published version's manifest —
format (v1 / arena), size on disk, array counts, content digest and build
parallelism (the serving-side counterpart of the paper's Fig 8a memory
reporting).  The ``explain`` and ``trace`` subcommands are the
observability CLI (``repro.obs``): per-stage latency breakdown of one
bound computation, and Chrome-trace export of a traced batch.

Examples::

    PYTHONPATH=src python -m repro.service
    PYTHONPATH=src python -m repro.service --requests 2000 --concurrency 16
    PYTHONPATH=src python -m repro.service --updates 5 --batch 32
    PYTHONPATH=src python -m repro.service --num-workers 4 --stats-format arena
    PYTHONPATH=src python -m repro.service serve --num-workers 2 --updates 3 &
    PYTHONPATH=src python -m repro.service client --port 7719 --requests 1000
    PYTHONPATH=src python -m repro.service stats-info demo --catalog /tmp/cat
    PYTHONPATH=src python -m repro.service explain --workload stats-ceb --query 3
    PYTHONPATH=src python -m repro.service trace --workload job-light --out trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time

import numpy as np

from ..core.predicates import Eq, Like, Range
from ..core.safebound import SafeBoundConfig
from ..db.database import Database
from ..db.query import Query
from ..db.schema import Schema
from ..db.table import Table
from .catalog import CatalogBackedSafeBound, StatsCatalog
from .ingest import RepublishWorker, UpdateIngest
from .server import EstimationServer, generate_load


def build_demo_database(n_movies: int = 2000, n_ratings: int = 40000, seed: int = 0) -> Database:
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table("movies", primary_key="id", filter_columns=["year", "title"])
    schema.add_table("ratings", join_columns=["movie_id"], filter_columns=["stars"])
    schema.add_foreign_key("ratings", "movie_id", "movies", "id")
    db = Database(schema)
    words = ["Casablanca", "Vertigo", "Alien", "Heat", "Arrival", "Amelie"]
    titles = np.array(
        [f"{words[int(w)]}{i % 101}" for i, w in enumerate(rng.integers(0, len(words), n_movies))],
        dtype=object,
    )
    db.add_table(Table("movies", {
        "id": np.arange(n_movies),
        "year": rng.integers(1940, 2024, n_movies),
        "title": titles,
    }))
    db.add_table(Table("ratings", {
        "id": np.arange(n_ratings),
        "movie_id": (rng.zipf(1.4, n_ratings) - 1) % n_movies,
        "stars": rng.integers(1, 6, n_ratings),
    }))
    return db


def demo_queries() -> list[Query]:
    def q() -> Query:
        return (
            Query()
            .add_relation("m", "movies")
            .add_relation("r", "ratings")
            .add_join("r", "movie_id", "m", "id")
        )

    queries = [
        q().add_predicate("m", Range("year", low=1990, high=1999)),
        q().add_predicate("m", Like("title", "Alien")).add_predicate("r", Eq("stars", 5)),
        q().add_predicate("r", Eq("stars", 1)),
        (
            Query()
            .add_relation("r1", "ratings")
            .add_relation("r2", "ratings")
            .add_join("r1", "movie_id", "r2", "movie_id")
        ),
    ]
    for decade in range(1940, 2020, 10):
        queries.append(q().add_predicate("m", Range("year", low=decade, high=decade + 9)))
    return queries


def stats_info(argv: list[str]) -> int:
    """``stats-info <database>``: print one published version's manifest."""
    from ..core.serialization import describe_stats_file
    from .catalog import StatsCatalog

    parser = argparse.ArgumentParser(
        prog="python -m repro.service stats-info",
        description="Inspect a published statistics version",
    )
    parser.add_argument("database", help="logical database name in the catalog")
    parser.add_argument("--catalog", required=True, help="catalog root directory")
    parser.add_argument(
        "--version", type=int, default=None, help="version number (default: latest)"
    )
    args = parser.parse_args(argv)
    catalog = StatsCatalog(args.catalog)
    try:
        entry = catalog.version_info(args.database, args.version)
    except LookupError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    path = catalog.archive_path(entry)
    info = {
        "database": entry.database,
        "version": entry.version,
        "label": entry.label,
        "filename": entry.filename,
        "created_at": entry.created_at,
        "note": entry.note,
        "build_seconds": entry.build_seconds,
        "num_sequences": entry.num_sequences,
        "stats_digest": entry.metadata.get("stats_digest"),
        "build_parallelism": {
            k: entry.metadata[k]
            for k in ("build_workers", "build_shard_rows", "build_pool")
            if k in entry.metadata
        },
        **describe_stats_file(str(path)),
    }
    print(json.dumps(info, indent=2))
    return 0


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


def _read_ready_file(path: str) -> dict | None:
    """The ready file's payload iff it names a live server process.

    A crash or SIGKILL never unlinks the file, so the address in it may
    be stale; liveness comes from the recorded PID.  Returns None for a
    payload whose pid is dead — callers must not trust its address."""
    with open(path) as fh:
        ready = json.load(fh)
    pid = ready.get("pid")
    if isinstance(pid, int) and not _pid_alive(pid):
        return None
    return ready


def _check_ready_file(path: str, remove_stale: bool = False) -> dict:
    """Validate a serve ``--ready-file``; optionally remove a stale one."""
    try:
        with open(path) as fh:
            ready = json.load(fh)
    except FileNotFoundError:
        return {"path": path, "status": "absent"}
    except (OSError, ValueError):
        ready = {}
    pid = ready.get("pid")
    if isinstance(pid, int) and _pid_alive(pid):
        return {"path": path, "status": "live", "pid": pid}
    removed = False
    if remove_stale:
        try:
            os.unlink(path)
            removed = True
        except OSError:
            pass
    return {"path": path, "status": "stale", "pid": pid, "removed": removed}


def fsck(argv: list[str]) -> int:
    """``fsck``: detect and repair crash debris in a stats catalog."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service fsck",
        description="Detect and repair catalog crash debris: stale publish "
        "temp files, unreadable (torn) archives, torn manifests, wrong "
        "generation stamps; prints a JSON repair report",
    )
    parser.add_argument("--catalog", required=True, help="catalog root directory")
    parser.add_argument("--database", default=None, help="limit to one database")
    parser.add_argument(
        "--stale-tmp-seconds", type=float, default=0.0,
        help="only remove publish temp files older than this many seconds "
        "(default 0: the operator asserts no publish is live)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="also validate a serve --ready-file (PID liveness) and remove "
        "it when stale",
    )
    args = parser.parse_args(argv)
    catalog = StatsCatalog(args.catalog, fsck_on_open=False)
    report = catalog.fsck(args.database, stale_tmp_seconds=args.stale_tmp_seconds)
    out = report.to_dict()
    if args.ready_file:
        out["ready_file"] = _check_ready_file(args.ready_file, remove_stale=True)
    print(json.dumps(out, indent=2))
    return 0


def _build_demo_estimator(
    catalog: StatsCatalog,
    db,
    *,
    eval_kernel: str,
    stats_format: str,
    shared_cache_bytes: int,
    num_workers: int,
) -> CatalogBackedSafeBound:
    """Build + publish demo statistics; returns the serving estimator.

    With a fork pool the served estimator is re-opened from the
    *published* archive (an mmap for the arena format) so workers inherit
    shared file-backed pages; ``refresh(db)`` re-attaches update tracking
    so live ingest works against the same estimator.
    """
    estimator = CatalogBackedSafeBound(
        catalog, "demo",
        SafeBoundConfig(
            track_updates=True,
            eval_kernel=eval_kernel,
            shared_conditioning_cache_bytes=shared_cache_bytes,
        ),
        stats_format=stats_format,
    )
    estimator.build(db)
    published = catalog.latest("demo")
    print(
        f"published {published.label} ({published.format}): "
        f"{published.file_bytes / 1024:.1f} KiB, "
        f"{published.num_sequences} sequences, built in {published.build_seconds:.2f}s",
        file=sys.stderr,
    )
    if num_workers > 1:
        estimator = CatalogBackedSafeBound(
            catalog, "demo",
            SafeBoundConfig(
                eval_kernel=eval_kernel,
                shared_conditioning_cache_bytes=shared_cache_bytes,
            ),
            stats_format=stats_format,
        )
        estimator.refresh(db)
    return estimator


def _ingest_round(ingest: UpdateIngest, db, rng, round_no: int) -> None:
    """One demo update round: a zipf-skewed ratings insert + a delete."""
    n = 2000
    start = db.table("ratings").num_rows + 1_000_000 * (round_no + 1)
    ingest.insert("ratings", {
        "id": np.arange(start, start + n),
        "movie_id": (rng.zipf(1.4, n) - 1) % db.table("movies").num_rows,
        "stars": rng.integers(1, 6, n),
    })
    ingest.delete("ratings", rng.choice(db.table("ratings").num_rows, 500, replace=False))


def serve(argv: list[str]) -> int:
    """``serve``: the demo stack behind the network tier, until killed."""
    from .net import NetServer

    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="Serve demo-database bounds over a socket "
        "(length-prefixed JSON protocol; drive with the 'client' subcommand)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--batch", type=int, default=64, help="max micro-batch size")
    parser.add_argument("--wait-ms", type=float, default=2.0, help="max batching wait")
    parser.add_argument("--queue", type=int, default=1024, help="admission queue size")
    parser.add_argument("--num-workers", type=int, default=0, help="fork-pool size")
    parser.add_argument("--eval-kernel", choices=("array", "object"), default="array")
    parser.add_argument("--stats-format", choices=("arena", "v1"), default="arena")
    parser.add_argument("--shared-cache-mb", type=float, default=0.0)
    parser.add_argument("--catalog", default=None, help="catalog root (default: temp dir)")
    parser.add_argument(
        "--updates", type=int, default=0,
        help="ingest rounds streamed while serving (each pads the live "
        "statistics; the background worker republishes, and fork-pool "
        "workers hot-swap to the new version via the generation stamp)",
    )
    parser.add_argument(
        "--update-interval", type=float, default=1.0,
        help="seconds between ingest rounds",
    )
    parser.add_argument(
        "--duration", type=float, default=0.0,
        help="exit after this many seconds (0: serve until SIGTERM/SIGINT)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write {host, port, pid} JSON here once listening (clients "
        "and CI scripts poll it instead of racing the bind)",
    )
    parser.add_argument("--metrics-json", default=None, metavar="PATH")
    parser.add_argument("--log-json", action="store_true")
    args = parser.parse_args(argv)

    db = build_demo_database()
    tmp = None
    root = args.catalog
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="safebound-catalog-")
        root = tmp.name
    shared_cache_bytes = int(args.shared_cache_mb * (1 << 20))

    # A SIGTERM (how CI stops the server) unwinds like Ctrl-C so the
    # server, pool and catalog tempdir all clean up.
    signal.signal(signal.SIGTERM, lambda *_: (_ for _ in ()).throw(KeyboardInterrupt()))
    try:
        catalog = StatsCatalog(root)
        estimator = _build_demo_estimator(
            catalog, db,
            eval_kernel=args.eval_kernel,
            stats_format=args.stats_format,
            shared_cache_bytes=shared_cache_bytes,
            num_workers=args.num_workers,
        )
        ingest = UpdateIngest(db, estimator, republish_overhead=0.05)
        worker = RepublishWorker(ingest, poll_seconds=0.05) if args.updates else None
        server = EstimationServer(
            estimator,
            max_queue=args.queue,
            max_batch=args.batch,
            max_wait_ms=args.wait_ms,
            refresh_db=db,
            num_workers=args.num_workers,
            metrics_json_path=args.metrics_json,
            json_log=sys.stderr if args.log_json else None,
        )
        rng = np.random.default_rng(1)
        with server, NetServer(server, args.host, args.port) as net:
            # pid + started_at let clients and fsck detect a stale ready
            # file left behind by a crash or SIGKILL (neither runs the
            # unlink below): a dead pid means the address is not trusted.
            ready = {
                "host": net.host,
                "port": net.port,
                "pid": os.getpid(),
                "started_at": time.time(),
            }
            if args.ready_file:
                ready_tmp = f"{args.ready_file}.incoming"
                with open(ready_tmp, "w") as fh:
                    json.dump(ready, fh)
                os.replace(ready_tmp, args.ready_file)
            print(json.dumps({"serving": ready}), flush=True)
            if worker is not None:
                worker.start()
            try:
                started = time.monotonic()
                rounds = 0
                while True:
                    time.sleep(min(args.update_interval, 0.25))
                    if rounds < args.updates and (
                        time.monotonic() - started >= (rounds + 1) * args.update_interval
                    ):
                        _ingest_round(ingest, db, rng, rounds)
                        rounds += 1
                    if args.duration and time.monotonic() - started >= args.duration:
                        break
            except KeyboardInterrupt:
                pass
            finally:
                if worker is not None:
                    worker.stop()
                if args.ready_file:
                    try:
                        os.unlink(args.ready_file)
                    except OSError:
                        pass
        summary = {
            "served_version": estimator.version,
            "generation": estimator.generation(),
            "republishes": ingest.republishes,
            "metrics": server.metrics.snapshot(),
        }
        print(json.dumps(summary, indent=2, default=repr))
    finally:
        if tmp is not None:
            tmp.cleanup()
    return 0


def client(argv: list[str]) -> int:
    """``client``: multi-process load generation against a ``serve``."""
    from .net import NetClient, generate_load_net

    parser = argparse.ArgumentParser(
        prog="python -m repro.service client",
        description="Drive a 'serve' instance from separate client processes",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="read host/port from a serve --ready-file (polls until it appears)",
    )
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--concurrency", type=int, default=4, help="threads per process")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--retry-deadline", type=float, default=None, metavar="SECONDS",
        help="give every request a retry budget: reconnect on resets and "
        "back off (honoring the server's retry_after_ms) for up to this "
        "many seconds before failing with a typed deadline error",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every request completed with zero errors and "
        "the server reports zero failed batches",
    )
    parser.add_argument(
        "--expect-min-generation", type=int, default=None,
        help="with --check, also require the served catalog generation to "
        "have reached this value (i.e. a republish propagated)",
    )
    args = parser.parse_args(argv)
    host, port = args.host, args.port
    if args.ready_file:
        deadline = time.monotonic() + args.timeout
        stale_seen = False
        while True:
            try:
                ready = _read_ready_file(args.ready_file)
                if ready is None:
                    # The file names a dead PID: a crashed server left it
                    # behind.  Keep polling — a restart rewrites it — but
                    # never trust the stale address.
                    stale_seen = True
                    raise ValueError("stale ready file (dead pid)")
                host, port = ready["host"], ready["port"]
                break
            except (OSError, ValueError, KeyError):
                if time.monotonic() > deadline:
                    what = (
                        "names a dead server (stale after a crash?)"
                        if stale_seen
                        else "never appeared"
                    )
                    print(f"ready file {args.ready_file} {what}", file=sys.stderr)
                    return 1
                time.sleep(0.1)
    if port is None:
        parser.error("--port or --ready-file is required")

    retry = None
    if args.retry_deadline is not None:
        from .net import RetryPolicy

        retry = RetryPolicy(deadline_seconds=args.retry_deadline, seed=0)
    report = generate_load_net(
        host, port, demo_queries(), args.requests,
        processes=args.processes,
        concurrency=args.concurrency,
        timeout=args.timeout,
        retry=retry,
    )
    report.pop("results")
    with NetClient(host, port, timeout=args.timeout) as probe:
        report["health"] = probe.health()
        if args.expect_min_generation is not None:
            # The republish runs on the server's own schedule; give it until
            # the deadline to land, then confirm post-swap serving works.
            deadline = time.monotonic() + args.timeout
            while (
                report["health"].get("generation", 0) < args.expect_min_generation
                and time.monotonic() < deadline
            ):
                time.sleep(0.25)
                report["health"] = probe.health()
            report["post_swap_bound"] = probe.bound(demo_queries()[0])
        report["server_metrics"] = probe.metrics()
    print(json.dumps(report, indent=2, default=repr))

    if args.check:
        failures = []
        if report["errors"]:
            failures.append(f"{len(report['errors'])} client-side errors")
        if report["completed"] != report["requests"]:
            failures.append(
                f"completed {report['completed']}/{report['requests']} requests"
            )
        if report["server_metrics"].get("failed"):
            failures.append(f"server failed {report['server_metrics']['failed']} requests")
        generation = report["health"].get("generation")
        if args.expect_min_generation is not None and (
            generation is None or generation < args.expect_min_generation
        ):
            failures.append(
                f"generation {generation} < expected {args.expect_min_generation}"
            )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("check ok: zero failed requests", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stats-info":
        return stats_info(argv[1:])
    if argv and argv[0] == "fsck":
        return fsck(argv[1:])
    if argv and argv[0] == "serve":
        return serve(argv[1:])
    if argv and argv[0] == "client":
        return client(argv[1:])
    if argv and argv[0] == "explain":
        from ..obs.cli import main_explain

        return main_explain(argv[1:])
    if argv and argv[0] == "trace":
        from ..obs.cli import main_trace

        return main_trace(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description="SafeBound bound-serving demo"
    )
    parser.add_argument("--requests", type=int, default=500, help="load-generator requests")
    parser.add_argument("--concurrency", type=int, default=8, help="client threads")
    parser.add_argument("--batch", type=int, default=64, help="max micro-batch size")
    parser.add_argument("--wait-ms", type=float, default=2.0, help="max batching wait")
    parser.add_argument("--queue", type=int, default=1024, help="admission-control queue size")
    parser.add_argument(
        "--updates", type=int, default=0,
        help="insert/delete rounds streamed through live ingest during the run",
    )
    parser.add_argument("--catalog", default=None, help="catalog root (default: temp dir)")
    parser.add_argument(
        "--eval-kernel", choices=("array", "object"), default="array",
        help="bound-evaluation kernel (bit-identical; 'array' batches the "
        "piecewise algebra into vectorized kernels)",
    )
    parser.add_argument(
        "--stats-format", choices=("arena", "v1"), default="arena",
        help="published archive layout: 'arena' is the zero-copy mmap "
        "format (O(manifest) load, pages shared across processes), 'v1' "
        "the compressed .npz object archive",
    )
    parser.add_argument(
        "--num-workers", type=int, default=0,
        help="fork this many serving processes that inherit the loaded "
        "statistics mmap (>1 enables multi-process mode; composes with "
        "--updates through the catalog's generation handshake — workers "
        "hot-swap to each republished version per batch)",
    )
    parser.add_argument(
        "--shared-cache-mb", type=float, default=0.0,
        help="size (MiB) of the shared conditioned-CDS cache; allocated "
        "before the serving pool forks, so workers reuse each other's "
        "conditioning work (0 disables; bounds are identical either way)",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="periodically rewrite a metrics-snapshot JSON file at this "
        "path while the server runs",
    )
    parser.add_argument(
        "--metrics-interval", type=float, default=5.0,
        help="seconds between --metrics-json rewrites",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one structured JSON line on stderr per rejected "
        "request / failed batch",
    )
    args = parser.parse_args(argv)

    db = build_demo_database()
    tmp = None
    if args.catalog is None:
        tmp = tempfile.TemporaryDirectory(prefix="safebound-catalog-")
        root = tmp.name
    else:
        root = args.catalog

    shared_cache_bytes = int(args.shared_cache_mb * (1 << 20))
    try:
        catalog = StatsCatalog(root)
        estimator = _build_demo_estimator(
            catalog, db,
            eval_kernel=args.eval_kernel,
            stats_format=args.stats_format,
            shared_cache_bytes=shared_cache_bytes,
            num_workers=args.num_workers,
        )
        ingest = UpdateIngest(db, estimator, republish_overhead=0.05)
        worker = RepublishWorker(ingest, poll_seconds=0.05) if args.updates else None
        server = EstimationServer(
            estimator,
            max_queue=args.queue,
            max_batch=args.batch,
            max_wait_ms=args.wait_ms,
            refresh_db=db,
            num_workers=args.num_workers,
            metrics_json_path=args.metrics_json,
            metrics_json_interval=args.metrics_interval,
            json_log=sys.stderr if args.log_json else None,
        )
        queries = demo_queries()
        rng = np.random.default_rng(1)
        with server:
            if worker is not None:
                worker.start()
            for round_no in range(args.updates):
                _ingest_round(ingest, db, rng, round_no)
            report = generate_load(
                server, queries, args.requests, concurrency=args.concurrency
            )
            if worker is not None:
                worker.stop()
        report.pop("results")
        report["eval_kernel"] = args.eval_kernel
        report["stats_format"] = args.stats_format
        report["num_workers"] = args.num_workers
        report["catalog_versions"] = [v.label for v in catalog.versions("demo")]
        report["served_version"] = estimator.version
        report["staleness"] = round(estimator.staleness(), 4)
        # Parent-side view of the conditioning caches; with a fork pool,
        # the "shared" tier aggregates hits across every worker (the
        # per-batch snapshot also appears under metrics.conditioning_cache).
        report["conditioning_cache"] = estimator.conditioning_cache_stats()
        report["shared_cache_mb"] = args.shared_cache_mb
        if args.updates:
            report["ingest"] = {
                "inserted_rows": ingest.inserted_rows,
                "deleted_rows": ingest.deleted_rows,
                "republishes": ingest.republishes,
            }
        print(json.dumps(report, indent=2))
    finally:
        if tmp is not None:
            tmp.cleanup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
