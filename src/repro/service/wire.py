"""Wire format of the network serving tier: query codec + framing.

The protocol is deliberately boring — length-prefixed JSON frames over a
stream socket.  Each frame is a 4-byte big-endian unsigned payload length
followed by that many bytes of UTF-8 JSON.  JSON keeps the protocol
debuggable (``nc`` + ``python -m json.tool`` is a working client) and the
query model is small enough that codec cost is noise next to bound
computation; the length prefix gives exact message boundaries without a
streaming parser, and a hard frame-size cap bounds what a malformed or
hostile peer can make the server allocate.

Frames are *strict* JSON: non-finite floats (an infinite bound, the NaN
percentiles of an empty latency reservoir) are encoded as the string
sentinels ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` instead of
Python's non-standard bare tokens, which non-Python JSON parsers reject.
``float(value)`` (see :func:`wire_to_float`) decodes a number field on
the receiving side.  A payload value with no wire form raises
:class:`FrameError` at send time — never a silent lossy ``repr``.

The query codec maps :class:`~repro.db.query.Query` and the predicate
AST (``core/predicates.py``) onto plain JSON values.  Round-tripping is
exact for every predicate class the executor supports — numpy scalar
predicate values are normalised to their Python equivalents, which
compare (and hash) equal, so a round-tripped query produces bit-identical
bounds.
"""

from __future__ import annotations

import json
import math
import socket
import struct

import numpy as np

from ..core.predicates import And, Eq, InList, Like, Or, Predicate, Range
from ..db.query import Query

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "query_to_wire",
    "query_from_wire",
    "predicate_to_wire",
    "predicate_from_wire",
    "wire_to_float",
    "encode_frame",
    "write_frame",
    "read_frame",
]

# Generous for bound requests (a large query batch is a few hundred KiB
# of JSON) yet small enough that a garbage length prefix cannot make the
# server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame: oversized, truncated, or not valid JSON."""


# ----------------------------------------------------------------------
# Query codec
# ----------------------------------------------------------------------
def _plain(value):
    """Normalise numpy scalars to plain Python so json.dumps accepts
    them; int/float/str/bool pass through."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def predicate_to_wire(predicate: Predicate) -> dict:
    if isinstance(predicate, Eq):
        return {"kind": "eq", "column": predicate.column, "value": _plain(predicate.value)}
    if isinstance(predicate, Range):
        return {
            "kind": "range",
            "column": predicate.column,
            "low": _plain(predicate.low),
            "high": _plain(predicate.high),
            "low_inclusive": predicate.low_inclusive,
            "high_inclusive": predicate.high_inclusive,
        }
    if isinstance(predicate, Like):
        return {"kind": "like", "column": predicate.column, "pattern": predicate.pattern}
    if isinstance(predicate, InList):
        return {
            "kind": "in",
            "column": predicate.column,
            "values": [_plain(v) for v in predicate.values],
        }
    if isinstance(predicate, (And, Or)):
        return {
            "kind": "and" if isinstance(predicate, And) else "or",
            "children": [predicate_to_wire(c) for c in predicate.children],
        }
    raise TypeError(f"predicate {type(predicate).__name__} has no wire form")


def predicate_from_wire(payload: dict) -> Predicate:
    kind = payload.get("kind")
    if kind == "eq":
        return Eq(payload["column"], payload["value"])
    if kind == "range":
        return Range(
            payload["column"],
            low=payload.get("low"),
            high=payload.get("high"),
            low_inclusive=payload.get("low_inclusive", True),
            high_inclusive=payload.get("high_inclusive", True),
        )
    if kind == "like":
        return Like(payload["column"], payload["pattern"])
    if kind == "in":
        return InList(payload["column"], payload["values"])
    if kind in ("and", "or"):
        children = [predicate_from_wire(c) for c in payload["children"]]
        return And(children) if kind == "and" else Or(children)
    raise ValueError(f"unknown predicate kind {kind!r}")


def query_to_wire(query: Query) -> dict:
    return {
        "name": query.name,
        "relations": dict(query.relations),
        "joins": [
            [j.left.alias, j.left.column, j.right.alias, j.right.column]
            for j in query.joins
        ],
        "predicates": {
            alias: predicate_to_wire(p) for alias, p in query.predicates.items()
        },
    }


def query_from_wire(payload: dict) -> Query:
    if not isinstance(payload, dict):
        raise ValueError("query payload must be a JSON object")
    query = Query(name=payload.get("name") or "")
    relations = payload.get("relations") or {}
    if not isinstance(relations, dict):
        raise ValueError("query 'relations' must be an object")
    for alias, table in relations.items():
        query.add_relation(alias, table)
    for join in payload.get("joins") or []:
        if not isinstance(join, (list, tuple)) or len(join) != 4:
            raise ValueError("each join must be [alias, column, alias, column]")
        query.add_join(*join)
    for alias, pred in (payload.get("predicates") or {}).items():
        query.add_predicate(alias, predicate_from_wire(pred))
    return query


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """The complete wire bytes of one frame (length prefix + body).

    All encoding errors — unknown types, oversized payloads — surface
    here, before any byte touches a socket, so a caller that encodes
    first can still answer on a correctly framed stream."""
    try:
        body = _dump(payload)
    except FrameError:
        raise  # unknown type — sanitizing floats would not help
    except ValueError:
        # A non-finite float somewhere in the payload: strict JSON has no
        # Infinity/NaN tokens, so re-encode them as string sentinels.
        # The fallback walk runs only on such payloads; everything else
        # takes the single-pass fast path above.
        body = _dump(_sanitize_nonfinite(payload))
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def write_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def _dump(payload: dict) -> bytes:
    try:
        return json.dumps(
            payload, separators=(",", ":"), allow_nan=False, default=_json_default
        ).encode()
    except TypeError as exc:
        raise FrameError(f"payload is not wire-serialisable: {exc}") from None


def _json_default(value):
    """Known-safe conversions only — an unknown object in a payload is a
    programming error that must surface as :class:`FrameError`, not
    degrade into a lossy ``repr`` string the peer cannot interpret."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} has no wire form")


def _sanitize_nonfinite(value):
    """``value`` with every non-finite float replaced by its sentinel."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    if isinstance(value, dict):
        return {k: _sanitize_nonfinite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_nonfinite(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_sanitize_nonfinite(v) for v in value.tolist()]
    return value


def wire_to_float(value) -> float:
    """Decode a number field of a frame: non-finite floats travel as the
    string sentinels ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"``, which
    ``float`` maps straight back."""
    return float(value)


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    """``n`` bytes, or None on clean EOF at a frame boundary; raises
    :class:`FrameError` on EOF mid-frame."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> dict | None:
    """The next frame's decoded JSON payload, or None on clean EOF."""
    header = _read_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_bytes} cap")
    body = _read_exact(sock, length)
    if body is None:
        raise FrameError("connection closed mid-frame")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError("frame payload must be a JSON object")
    return payload
