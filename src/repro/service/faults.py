"""Deterministic fault injection for the serving stack.

The paper's guarantee — bounds never underestimate, even under updates —
is delivered by a pipeline of processes and files (catalog publishes,
fork workers, socket frames, republish cycles), and every link can fail:
a torn manifest write, a SIGKILLed worker, a reset connection, a
persistent republish error.  The resilience machinery that survives
those faults is only trustworthy if CI can *provoke* them on demand, the
same way every time.  This module is that provocation layer.

A :class:`FaultPlan` is a set of named **sites** (strings like
``"catalog.manifest.torn"``) with per-site triggers: fire on the k-th
arrival, fire n times, or fire with a seeded per-site probability — all
deterministic, so a failing chaos seed replays exactly.  Installing a
plan (:func:`install_faults` / the :func:`faults_installed` context
manager) makes it the process-global plan; fork children inherit it, so
one plan covers the parent, the pool workers, and anything they exec via
fork.

Production code threads **site checks** through its fault points:

* :func:`fire` — raise :class:`InjectedFault` (an ``OSError``), sleep
  (``action="sleep"``), or SIGKILL the calling process
  (``action="kill"``) when the site triggers;
* :func:`corrupt` — return ``transform(value)`` when the site triggers,
  ``value`` itself (same object, so callers can test identity)
  otherwise.  The *call site* defines what corruption means — a torn
  manifest is truncated text, a poisoned batch is a short estimate list.

With no plan installed both helpers are one module-global load plus a
``None`` check — the same zero-overhead discipline as ``obs.tracing``:
``bench_obs_overhead.py`` measures the disabled per-call cost and
``bench_resilience.py`` asserts its floor, so leaving sites compiled
into the serving path costs nothing in production.
"""

from __future__ import annotations

import contextlib
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "get_faults",
    "install_faults",
    "uninstall_faults",
    "faults_installed",
    "fire",
    "corrupt",
]


class InjectedFault(OSError):
    """The error an injected ``raise`` site throws.

    An ``OSError`` subclass on purpose: most serving fault points are IO
    boundaries whose handlers catch ``OSError``, and injection must flow
    through exactly the handlers a real torn write or reset would."""

    def __init__(self, site: str, detail: str = "") -> None:
        message = f"injected fault at {site!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """One site's trigger schedule.

    Arrivals at the site are counted; the spec skips the first ``after``
    of them, then triggers up to ``times`` of the rest (``times <= 0``
    means unlimited).  With ``probability`` set, each eligible arrival
    triggers with that probability from a per-site stream seeded by the
    plan — deterministic per (seed, site, arrival index).

    ``action`` is what a trigger does: ``"raise"`` throws
    :class:`InjectedFault`, ``"sleep"`` blocks for ``delay`` seconds,
    ``"kill"`` SIGKILLs the calling process (a worker-crash fault), and
    ``"corrupt"`` makes :func:`corrupt` apply its caller-supplied
    transform.  A ``"corrupt"`` spec is inert at :func:`fire` sites and
    vice versa — the site kind is part of the contract.
    """

    site: str
    times: int = 1
    after: int = 0
    probability: float | None = None
    action: str = "raise"
    delay: float = 0.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("raise", "sleep", "kill", "corrupt"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass
class _SiteState:
    spec: FaultSpec
    rng: random.Random | None
    arrivals: int = 0
    fired: int = 0


class FaultPlan:
    """A seeded, installable schedule of fault sites.

    Thread-safe: arrival counting and trigger decisions happen under one
    lock, so concurrent connection/worker threads see a consistent
    per-site sequence.  ``counts()`` reports arrivals and fires per site
    — what chaos tests assert to prove their faults actually happened.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteState] = {}
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        with self._lock:
            rng = (
                random.Random(f"{self.seed}:{spec.site}")
                if spec.probability is not None
                else None
            )
            self._sites[spec.site] = _SiteState(spec, rng)
        return self

    def counts(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                site: {"arrivals": s.arrivals, "fired": s.fired}
                for site, s in self._sites.items()
            }

    def fired(self, site: str) -> int:
        with self._lock:
            state = self._sites.get(site)
            return state.fired if state else 0

    # ------------------------------------------------------------------
    def _trigger(self, site: str, kind: str) -> FaultSpec | None:
        """Count one arrival at ``site``; the spec if it triggers now.

        ``kind`` partitions sites into ``fire`` (raise/sleep/kill) and
        ``corrupt`` ones so a spec only ever triggers at the site shape
        it was written for.
        """
        with self._lock:
            state = self._sites.get(site)
            if state is None:
                return None
            spec = state.spec
            wanted = "corrupt" if spec.action == "corrupt" else "fire"
            if wanted != kind:
                return None
            state.arrivals += 1
            if state.arrivals <= spec.after:
                return None
            if spec.times > 0 and state.fired >= spec.times:
                return None
            if state.rng is not None and state.rng.random() >= spec.probability:
                return None
            state.fired += 1
            return spec

    def fire(self, site: str) -> None:
        spec = self._trigger(site, "fire")
        if spec is None:
            return
        if spec.action == "sleep":
            time.sleep(spec.delay)
            return
        if spec.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - the process is gone
        raise InjectedFault(site, spec.detail)

    def corrupt(self, site: str, value, transform):
        spec = self._trigger(site, "corrupt")
        if spec is None:
            return value
        return transform(value)


# ----------------------------------------------------------------------
# Process-global installation.  The serving hot paths check this global
# on every site — keep the uninstalled path to one load + None check.
# ----------------------------------------------------------------------
_plan: FaultPlan | None = None


def _reset_plan_lock_after_fork() -> None:
    # A pool respawn can fork while another thread of the parent is
    # inside a site check holding the plan lock; the child would inherit
    # it locked and deadlock on its first site.  Fresh lock per child —
    # the counters are per-process anyway.
    plan = _plan
    if plan is not None:
        plan._lock = threading.Lock()


os.register_at_fork(after_in_child=_reset_plan_lock_after_fork)


def get_faults() -> FaultPlan | None:
    return _plan


def install_faults(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide.  Forked children (pool workers,
    load-generator processes) inherit the installed plan — each with its
    own copy of the counters, so a per-worker schedule (e.g. "kill after
    3 batches") applies to every worker independently."""
    global _plan
    _plan = plan
    return plan


def uninstall_faults() -> None:
    global _plan
    _plan = None


@contextlib.contextmanager
def faults_installed(plan: FaultPlan):
    """Install ``plan`` for the block, restoring the previous plan."""
    global _plan
    previous = _plan
    _plan = plan
    try:
        yield plan
    finally:
        _plan = previous


def fire(site: str) -> None:
    """The raise/sleep/kill site check (no-op without an installed plan)."""
    plan = _plan
    if plan is not None:
        plan.fire(site)


def corrupt(site: str, value, transform):
    """The value-corruption site check: ``transform(value)`` when the
    site triggers, ``value`` itself (identical object) otherwise."""
    plan = _plan
    if plan is None:
        return value
    return plan.corrupt(site, value, transform)
