"""Serving-side observability: latency recording and server counters.

The paper reports planning-time medians; a serving deployment needs tail
latency too, so the recorder keeps a bounded reservoir of recent samples
and summarises p50/p95/p99.  All mutators take a lock — they are called
from client threads (admission), the worker thread (batching), and the
ingest thread concurrently.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["LatencyRecorder", "ServerMetrics"]


class LatencyRecorder:
    """A bounded reservoir of latency samples with percentile summaries."""

    def __init__(self, capacity: int = 8192) -> None:
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1

    def summary(self) -> dict[str, float]:
        """Lifetime sample count plus mean/p50/p95/p99/max over the
        retained reservoir.

        ``count`` is the number of samples *ever* recorded; ``window`` is
        the number retained in the bounded reservoir, which is what the
        mean and percentiles are computed over.  Keeping the two apart
        stops a long-lived server's summary from implying its percentiles
        cover millions of samples when the reservoir holds the last 8192.
        """
        with self._lock:
            samples = np.array(self._samples, dtype=float)
            count = self.count
        if not len(samples):
            nan = float("nan")
            return {
                "count": count,
                "window": 0,
                "mean": nan,
                "p50": nan,
                "p95": nan,
                "p99": nan,
                "max": nan,
            }
        return {
            "count": count,
            "window": int(len(samples)),
            "mean": float(samples.mean()),
            "p50": float(np.quantile(samples, 0.50)),
            "p95": float(np.quantile(samples, 0.95)),
            "p99": float(np.quantile(samples, 0.99)),
            "max": float(samples.max()),
        }


class ServerMetrics:
    """Counters and latency recorders of one estimation server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.swaps = 0
        # Dead-worker reaping (fork-pool mode): reap events seen and
        # batches failed by them.
        self.worker_reaps = 0
        self.reaped_batches = 0
        # Worker deaths the pool replaced (each reap respawns) and
        # circuit-breaker trips — a respawn storm beyond the server's
        # bounded restart rate degrades it to single-process serving.
        self.worker_respawns = 0
        self.breaker_trips = 0
        # Queue wait (admission -> batch start) and total request latency
        # (admission -> result), in seconds.
        self.queue_latency = LatencyRecorder()
        self.request_latency = LatencyRecorder()
        # Optional callable returning the estimator's conditioning-cache
        # counters (SafeBound.conditioning_cache_stats); set by the server
        # when the estimator exposes one, sampled at snapshot time.
        self.conditioning_source = None
        # Optional callable returning pool-worker liveness (the server's
        # worker_pids plus reap counters), set in fork-pool mode.
        self.workers_source = None
        # Optional callable returning the fork-shared observability
        # registry's snapshot (repro.obs MetricsRegistry) — the aggregated
        # kernel/cache/latency counters of parent and every pool worker.
        self.obs_source = None
        # Optional callable returning the server's health verdict
        # (EstimationServer.health_status): ok/degraded/stopped plus the
        # readiness/liveness split, sampled at snapshot time.
        self.health_source = None

    # ------------------------------------------------------------------
    def record_accepted(self) -> None:
        with self._lock:
            self.accepted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.max_batch = max(self.max_batch, size)

    def record_completed(self, count: int = 1) -> None:
        with self._lock:
            self.completed += count

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def record_swap(self) -> None:
        with self._lock:
            self.swaps += 1

    def record_reap(self, batches: int) -> None:
        with self._lock:
            self.worker_reaps += 1
            self.reaped_batches += batches

    def record_respawn(self, count: int = 1) -> None:
        with self._lock:
            self.worker_respawns += count

    def record_breaker_trip(self) -> None:
        with self._lock:
            self.breaker_trips += 1

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """A JSON-friendly view of every counter and latency summary."""
        with self._lock:
            counters = {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "max_batch": self.max_batch,
                "swaps": self.swaps,
                "worker_reaps": self.worker_reaps,
                "reaped_batches": self.reaped_batches,
                "worker_respawns": self.worker_respawns,
                "breaker_trips": self.breaker_trips,
            }
        counters["mean_batch_size"] = (
            counters["batched_requests"] / counters["batches"]
            if counters["batches"]
            else 0.0
        )
        counters["queue_latency"] = self.queue_latency.summary()
        counters["request_latency"] = self.request_latency.summary()
        for key, source in (
            ("conditioning_cache", self.conditioning_source),
            ("workers", self.workers_source),
            ("observability", self.obs_source),
            ("health", self.health_source),
        ):
            if source is not None:
                try:
                    counters[key] = source()
                except Exception:  # estimator mid-refresh / not built yet
                    pass
        return counters
