"""The bound-serving subsystem: catalog, server, metrics, live ingest.

Composes the library pieces into a long-running service:

* :mod:`repro.service.catalog` — versioned on-disk statistics catalog
  with atomic publish and hot version swap;
* :mod:`repro.service.server` — micro-batching estimation server with
  admission control and latency metrics;
* :mod:`repro.service.ingest` — live insert/delete ingest with
  background recompress-and-republish cycles;
* :mod:`repro.service.net` / :mod:`repro.service.wire` — the network
  serving tier: a length-prefixed JSON socket facade, typed client, and
  multi-process load generator;
* ``python -m repro.service`` — the runnable demo plus ``serve`` /
  ``client`` subcommands for cross-process serving.
"""

from .catalog import CatalogBackedSafeBound, StatsCatalog, StatsVersion
from .ingest import RepublishWorker, UpdateIngest, append_rows, remove_rows
from .metrics import LatencyRecorder, ServerMetrics
from .net import NetClient, NetRequestError, NetServer, generate_load_net
from .server import EstimationServer, ServerOverloadedError, generate_load

__all__ = [
    "StatsCatalog",
    "StatsVersion",
    "CatalogBackedSafeBound",
    "EstimationServer",
    "ServerOverloadedError",
    "generate_load",
    "NetServer",
    "NetClient",
    "NetRequestError",
    "generate_load_net",
    "LatencyRecorder",
    "ServerMetrics",
    "UpdateIngest",
    "RepublishWorker",
    "append_rows",
    "remove_rows",
]
