"""STATS-CEB: 146 queries over the Stats StackExchange schema (Sec 5).

8 tables with *cyclic* PK-FK relationships: ``posts`` references
``users``, and ``comments`` / ``votes`` / ``postHistory`` reference both
``posts`` and ``users`` — so queries touching all three relations form
triangles.  Predicates are numeric only, 2-16 per query, with 2-8 joined
tables; a slice of the generated queries is genuinely cyclic, exercising
SafeBound's spanning-tree bound (Sec 3.6).
"""

from __future__ import annotations

import numpy as np

from ..core.predicates import And, Eq, Range
from ..db.database import Database
from ..db.query import Query
from ..db.schema import Schema
from ..db.table import Table
from .generator import Workload, correlated_int, weighted_keys, popularity_weights, zipf_keys

__all__ = ["make_stats_ceb", "make_stats_db"]

# alias -> (table, join spec)
_TABLES = ["users", "posts", "comments", "votes", "badges", "postHistory", "postLinks", "tags"]

_NUMERIC_PREDICATES = {
    "users": [("reputation", "range"), ("upvotes", "range"), ("downvotes", "range"), ("creationdate", "range")],
    "posts": [("score", "range"), ("viewcount", "range"), ("answercount", "eq"), ("posttypeid", "eq"), ("commentcount", "range"), ("creationdate", "range")],
    "comments": [("score", "eq"), ("creationdate", "range")],
    "votes": [("votetypeid", "eq"), ("bountyamount", "range"), ("creationdate", "range")],
    "badges": [("date", "range")],
    "postHistory": [("posthistorytypeid", "eq"), ("creationdate", "range")],
    "postLinks": [("linktypeid", "eq"), ("creationdate", "range")],
    "tags": [("count", "range")],
}


def make_stats_db(scale: float = 1.0, seed: int = 5) -> Database:
    """Synthetic Stats StackExchange instance with a cyclic FK graph."""
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table("users", primary_key="id", filter_columns=["reputation", "upvotes", "downvotes", "creationdate"])
    schema.add_table(
        "posts",
        primary_key="id",
        join_columns=["id", "owneruserid"],
        filter_columns=["score", "viewcount", "answercount", "posttypeid", "commentcount", "creationdate"],
    )
    schema.add_table("comments", join_columns=["postid", "userid"], filter_columns=["score", "creationdate"])
    schema.add_table("votes", join_columns=["postid", "userid"], filter_columns=["votetypeid", "bountyamount", "creationdate"])
    schema.add_table("badges", join_columns=["userid"], filter_columns=["date"])
    schema.add_table("postHistory", join_columns=["postid", "userid"], filter_columns=["posthistorytypeid", "creationdate"])
    schema.add_table("postLinks", join_columns=["postid", "relatedpostid"], filter_columns=["linktypeid", "creationdate"])
    schema.add_table("tags", join_columns=["excerptpostid"], filter_columns=["count"])
    schema.add_foreign_key("posts", "owneruserid", "users", "id")
    schema.add_foreign_key("comments", "postid", "posts", "id")
    schema.add_foreign_key("comments", "userid", "users", "id")
    schema.add_foreign_key("votes", "postid", "posts", "id")
    schema.add_foreign_key("votes", "userid", "users", "id")
    schema.add_foreign_key("badges", "userid", "users", "id")
    schema.add_foreign_key("postHistory", "postid", "posts", "id")
    schema.add_foreign_key("postHistory", "userid", "users", "id")
    schema.add_foreign_key("postLinks", "postid", "posts", "id")
    schema.add_foreign_key("postLinks", "relatedpostid", "posts", "id")
    schema.add_foreign_key("tags", "excerptpostid", "posts", "id")
    db = Database(schema)

    n_users = max(int(3000 * scale), 50)
    n_posts = max(int(8000 * scale), 80)
    # Dates are days since epoch; activity concentrates in later years.
    user_date = rng.integers(0, 3000, n_users)
    reputation = np.maximum(1, (rng.zipf(1.3, n_users) % 50000)).astype(np.int64)
    upvotes = correlated_int(rng, reputation, 0, 5000, strength=0.85, noise=20)
    downvotes = correlated_int(rng, upvotes, 0, 500, strength=0.7, noise=10)
    db.add_table(Table("users", {
        "id": np.arange(n_users), "reputation": reputation, "upvotes": upvotes,
        "downvotes": downvotes, "creationdate": user_date,
    }))

    user_pop = popularity_weights(rng, n_users, 1.2)
    owner = weighted_keys(rng, user_pop, n_posts)
    post_date = np.minimum(user_date[owner] + rng.integers(0, 2000, n_posts), 5000)
    score = (rng.zipf(1.6, n_posts) % 200).astype(np.int64)
    viewcount = correlated_int(rng, score, 0, 100000, strength=0.8, noise=500)
    answercount = np.where(rng.random(n_posts) < 0.6, rng.integers(0, 5, n_posts), 0)
    posttypeid = zipf_keys(rng, 2.0, n_posts, 5) + 1
    commentcount = correlated_int(rng, score, 0, 50, strength=0.6, noise=3)
    db.add_table(Table("posts", {
        "id": np.arange(n_posts), "owneruserid": owner, "score": score,
        "viewcount": viewcount, "answercount": answercount, "posttypeid": posttypeid,
        "commentcount": commentcount, "creationdate": post_date,
    }))
    post_pop = popularity_weights(rng, n_posts, 1.15)

    def fact(name, n_rows, cols):
        n_rows = max(int(n_rows * scale), 40)
        base = {"id": np.arange(n_rows)}
        base.update(cols(n_rows))
        db.add_table(Table(name, base))

    fact("comments", 18000, lambda n: {
        "postid": weighted_keys(rng, post_pop, n),
        "userid": weighted_keys(rng, user_pop, n),
        "score": (rng.zipf(2.2, n) % 20).astype(np.int64),
        "creationdate": rng.integers(500, 5000, n),
    })
    fact("votes", 25000, lambda n: {
        "postid": weighted_keys(rng, post_pop, n),
        "userid": weighted_keys(rng, user_pop, n),
        "votetypeid": zipf_keys(rng, 1.8, n, 15) + 1,
        "bountyamount": np.where(rng.random(n) < 0.05, rng.integers(50, 500, n), 0),
        "creationdate": rng.integers(500, 5000, n),
    })
    fact("badges", 8000, lambda n: {
        "userid": weighted_keys(rng, user_pop, n),
        "date": rng.integers(0, 5000, n),
    })
    fact("postHistory", 15000, lambda n: {
        "postid": weighted_keys(rng, post_pop, n),
        "userid": weighted_keys(rng, user_pop, n),
        "posthistorytypeid": zipf_keys(rng, 1.6, n, 30) + 1,
        "creationdate": rng.integers(500, 5000, n),
    })
    fact("postLinks", 3000, lambda n: {
        "postid": weighted_keys(rng, post_pop, n),
        "relatedpostid": weighted_keys(rng, post_pop, n),
        "linktypeid": zipf_keys(rng, 2.5, n, 3) + 1,
        "creationdate": rng.integers(500, 5000, n),
    })
    fact("tags", 1000, lambda n: {
        "excerptpostid": weighted_keys(rng, post_pop, n),
        "count": (rng.zipf(1.4, n) % 10000).astype(np.int64),
    })
    return db


_JOINS = {
    # alias pairs and the columns joining them
    ("posts", "users"): ("owneruserid", "id"),
    ("comments", "posts"): ("postid", "id"),
    ("comments", "users"): ("userid", "id"),
    ("votes", "posts"): ("postid", "id"),
    ("votes", "users"): ("userid", "id"),
    ("badges", "users"): ("userid", "id"),
    ("postHistory", "posts"): ("postid", "id"),
    ("postHistory", "users"): ("userid", "id"),
    ("postLinks", "posts"): ("postid", "id"),
    ("tags", "posts"): ("excerptpostid", "id"),
}


def _predicate(rng: np.random.Generator, db: Database, table: str, column: str, kind: str):
    values = db.table(table).column(column)
    if kind == "eq":
        return Eq(column, int(values[rng.integers(0, len(values))]))
    # Pivot at a data quantile keeps one-sided ranges moderately selective.
    quantile = float(rng.uniform(0.05, 0.95))
    pivot = int(np.quantile(values.astype(float), quantile))
    roll = rng.random()
    if roll < 0.45:
        return Range(column, low=pivot)
    if roll < 0.9:
        return Range(column, high=pivot)
    return Range(column, low=pivot, high=pivot + int(rng.integers(1, max(int(values.max()) // 4, 2))))


def generate_stats_queries(db: Database, num_queries: int = 146, seed: int = 80) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    while len(queries) < num_queries:
        q = Query(name=f"stats_{len(queries):03d}")
        num_tables = int(rng.integers(2, 7))
        # Grow a connected table set over the schema's join pairs.
        tables = {str(rng.choice(["posts", "users", "comments", "votes"]))}
        candidates = list(_JOINS)
        rng.shuffle(candidates)
        while len(tables) < num_tables:
            grown = False
            for a, b in candidates:
                if a in tables and b not in tables:
                    tables.add(b)
                    grown = True
                elif b in tables and a not in tables:
                    tables.add(a)
                    grown = True
                if len(tables) >= num_tables:
                    break
            if not grown:
                break
        for t in sorted(tables):
            q.add_relation(t, t)
        for (a, b), (ca, cb) in _JOINS.items():
            if a in tables and b in tables:
                # Cyclic joins (e.g. comments-posts-users triangles) are kept
                # with probability 0.8, making a slice of the workload cyclic.
                q.add_join(a, ca, b, cb)
        if len(q.joins) > len(tables) - 1 and rng.random() < 0.2:
            # occasionally drop one edge to vary between cyclic and acyclic
            q.joins.pop(int(rng.integers(0, len(q.joins))))
            if not q.is_connected():
                continue
        num_preds = int(rng.integers(2, 7))
        pool = []
        # Iterate in sorted order: set order depends on PYTHONHASHSEED and
        # would make the generated workload differ across processes.
        for t in sorted(tables):
            pool += [(t, c, k) for c, k in _NUMERIC_PREDICATES[t]]
        rng.shuffle(pool)
        per_alias: dict[str, list] = {}
        used = set()
        for alias, column, kind in pool[:num_preds]:
            if (alias, column) in used:
                continue
            used.add((alias, column))
            per_alias.setdefault(alias, []).append(
                _predicate(rng, db, alias, column, kind)
            )
        for alias, preds in per_alias.items():
            q.add_predicate(alias, preds[0] if len(preds) == 1 else And(preds))
        if not q.is_connected():
            continue
        queries.append(q)
    return queries


def make_stats_ceb(
    db: Database | None = None,
    scale: float = 1.0,
    num_queries: int = 146,
    seed: int = 5,
) -> Workload:
    """The STATS-CEB workload (146 queries, cyclic schema, at paper scale)."""
    db = db if db is not None else make_stats_db(scale=scale, seed=seed)
    queries = generate_stats_queries(db, num_queries, seed + 79)
    return Workload("STATS-CEB", db, queries)
