"""Synthetic benchmark workloads mirroring the paper's evaluation datasets."""

from .generator import Workload
from .imdb import JOB_LIGHT_TABLES, JOB_M_TABLES, make_imdb
from .job_light import make_job_light
from .job_light_ranges import make_job_light_ranges
from .job_m import make_job_m
from .stats_ceb import make_stats_ceb, make_stats_db
from .tpch import make_tpch, make_tpch_db

__all__ = [
    "Workload",
    "make_imdb",
    "JOB_LIGHT_TABLES",
    "JOB_M_TABLES",
    "make_job_light",
    "make_job_light_ranges",
    "make_job_m",
    "make_stats_ceb",
    "make_stats_db",
    "make_tpch",
    "make_tpch_db",
]
