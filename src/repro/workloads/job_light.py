"""JOB-Light: 70 star queries over 6 IMDB tables (Kipf et al. 2019).

Each query joins ``title`` with 1-4 of the five fact tables on
``movie_id = title.id`` (2-5 relations total) and applies 1-4 predicates
on *numeric* columns, mirroring the benchmark the paper evaluates.
Queries are generated with a fixed seed, drawing predicate constants from
the actual data so selectivities span several orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from ..core.predicates import And, Eq, Range
from ..db.database import Database
from ..db.query import Query
from .generator import Workload
from .imdb import make_imdb

__all__ = ["make_job_light", "FACT_TABLES"]

FACT_TABLES = {
    "ci": "cast_info",
    "mi": "movie_info",
    "mi_idx": "movie_info_idx",
    "mk": "movie_keyword",
    "mc": "movie_companies",
}

# alias -> list of (column, kind) numeric predicate targets
_NUMERIC_PREDICATES = {
    "t": [("production_year", "range"), ("kind_id", "eq"), ("episode_nr", "range"), ("season_nr", "eq")],
    "ci": [("role_id", "eq"), ("nr_order", "range")],
    "mi": [("info_type_id", "eq")],
    "mi_idx": [("info_type_id", "eq")],
    "mk": [("keyword_id", "eq")],
    "mc": [("company_type_id", "eq")],
}


def _numeric_predicate(rng: np.random.Generator, db: Database, table: str, column: str, kind: str):
    values = db.table(table).column(column)
    if kind == "eq":
        return Eq(column, int(values[rng.integers(0, len(values))]))
    lo_v, hi_v = int(values.min()), int(values.max())
    if rng.random() < 0.4:
        # one-sided comparison
        pivot = int(values[rng.integers(0, len(values))])
        if rng.random() < 0.5:
            return Range(column, low=pivot)
        return Range(column, high=pivot)
    a = int(rng.integers(lo_v, hi_v + 1))
    b = a + int(rng.integers(0, max((hi_v - lo_v) // 4, 2)))
    return Range(column, low=a, high=b)


def generate_job_light_queries(
    db: Database, num_queries: int = 70, seed: int = 20
) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    aliases = list(FACT_TABLES)
    while len(queries) < num_queries:
        q = Query(name=f"job_light_{len(queries):03d}")
        q.add_relation("t", "title")
        num_facts = int(rng.integers(1, 5))
        chosen = list(rng.choice(aliases, size=num_facts, replace=False))
        for alias in chosen:
            q.add_relation(alias, FACT_TABLES[alias])
            q.add_join(alias, "movie_id", "t", "id")
        num_preds = int(rng.integers(1, 5))
        pool = [("t", c, k) for c, k in _NUMERIC_PREDICATES["t"]]
        for alias in chosen:
            pool += [(alias, c, k) for c, k in _NUMERIC_PREDICATES[alias]]
        rng.shuffle(pool)
        per_alias: dict[str, list] = {}
        used = set()
        for alias, column, kind in pool[:num_preds]:
            if (alias, column) in used:
                continue
            used.add((alias, column))
            pred = _numeric_predicate(rng, db, q.relations[alias], column, kind)
            per_alias.setdefault(alias, []).append(pred)
        for alias, preds in per_alias.items():
            q.add_predicate(alias, preds[0] if len(preds) == 1 else And(preds))
        queries.append(q)
    return queries


def make_job_light(
    db: Database | None = None,
    scale: float = 1.0,
    num_queries: int = 70,
    seed: int = 1,
) -> Workload:
    """The JOB-Light workload (pass a shared IMDB ``db`` to reuse it)."""
    db = db if db is not None else make_imdb(scale=scale, seed=seed)
    queries = generate_job_light_queries(db, num_queries, seed + 19)
    return Workload("JOB-Light", db, queries)
