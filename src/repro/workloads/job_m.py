"""JOB-M: 113 queries over all 16 IMDB tables (Sec 5, Datasets).

The most complex IMDB workload: star-and-snowflake joins reaching through
dimension tables (``kind_type``, ``info_type``, ``keyword``,
``company_name``, ``name``, ``role_type``), with IN and LIKE predicates.
This exercises SafeBound's PK-FK statistics propagation (Sec 4.2): a
predicate on ``keyword.keyword`` conditions ``movie_keyword``'s degree
sequences directly.
"""

from __future__ import annotations

import numpy as np

from ..core.predicates import And, Eq, InList, Like, Range
from ..db.database import Database
from ..db.query import Query
from .generator import Workload
from .imdb import make_imdb

__all__ = ["make_job_m"]

# (fact alias, fact table, fk column, dim alias, dim table, dim pk)
_DIM_EDGES = {
    "ci": [("person_id", "n", "name", "id"), ("role_id", "rt", "role_type", "id")],
    "mi": [("info_type_id", "it", "info_type", "id")],
    "mi_idx": [("info_type_id", "it2", "info_type", "id")],
    "mk": [("keyword_id", "k", "keyword", "id")],
    "mc": [("company_id", "cn", "company_name", "id"), ("company_type_id", "ct", "company_type", "id")],
}

_FACTS = {
    "ci": "cast_info",
    "mi": "movie_info",
    "mi_idx": "movie_info_idx",
    "mk": "movie_keyword",
    "mc": "movie_companies",
}


def _sample_string(rng: np.random.Generator, db: Database, table: str, column: str) -> str:
    values = db.table(table).column(column)
    for _ in range(10):
        v = values[rng.integers(0, len(values))]
        if isinstance(v, str) and v:
            return v
    return "the"


def _dim_predicate(rng: np.random.Generator, db: Database, dim_table: str):
    if dim_table == "kind_type":
        kinds = db.table("kind_type").column("kind")
        n = int(rng.integers(1, 4))
        picks = list({str(kinds[rng.integers(0, len(kinds))]) for _ in range(n)})
        return InList("kind", picks) if len(picks) > 1 else Eq("kind", picks[0])
    if dim_table == "info_type":
        infos = db.table("info_type").column("info")
        return Eq("info", str(infos[rng.integers(0, len(infos))]))
    if dim_table == "keyword":
        word = _sample_string(rng, db, "keyword", "keyword")
        return Like("keyword", word[: max(3, len(word) // 2)])
    if dim_table == "company_name":
        if rng.random() < 0.5:
            codes = db.table("company_name").column("country_code")
            return Eq("country_code", str(codes[rng.integers(0, len(codes))]))
        word = _sample_string(rng, db, "company_name", "name")
        return Like("name", word[: max(3, len(word) // 2)])
    if dim_table == "company_type":
        kinds = db.table("company_type").column("kind")
        return Eq("kind", str(kinds[rng.integers(0, len(kinds))]))
    if dim_table == "name":
        if rng.random() < 0.5:
            return Eq("gender", ["m", "f"][int(rng.integers(0, 2))])
        word = _sample_string(rng, db, "name", "name")
        return Like("name", word[: max(3, len(word) // 2)])
    if dim_table == "role_type":
        roles = db.table("role_type").column("role")
        return Eq("role", str(roles[rng.integers(0, len(roles))]))
    raise KeyError(dim_table)


def generate_job_m_queries(db: Database, num_queries: int = 113, seed: int = 60) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    fact_aliases = list(_FACTS)
    while len(queries) < num_queries:
        q = Query(name=f"job_m_{len(queries):03d}")
        q.add_relation("t", "title")
        num_facts = int(rng.integers(2, 5))
        chosen = list(rng.choice(fact_aliases, size=num_facts, replace=False))
        dims_used = 0
        for alias in chosen:
            q.add_relation(alias, _FACTS[alias])
            q.add_join(alias, "movie_id", "t", "id")
            for fk_col, dim_alias, dim_table, dim_pk in _DIM_EDGES[alias]:
                if dims_used >= 4 or rng.random() > 0.55:
                    continue
                if dim_alias in q.relations:
                    continue
                q.add_relation(dim_alias, dim_table)
                q.add_join(alias, fk_col, dim_alias, dim_pk)
                q.add_predicate(dim_alias, _dim_predicate(rng, db, dim_table))
                dims_used += 1
        # Optionally join through kind_type and filter on the kind string.
        if rng.random() < 0.5:
            q.add_relation("kt", "kind_type")
            q.add_join("t", "kind_id", "kt", "id")
            q.add_predicate("kt", _dim_predicate(rng, db, "kind_type"))
        # Title-level numeric predicates.
        if rng.random() < 0.8:
            years = db.table("title").column("production_year")
            lo = int(years[rng.integers(0, len(years))])
            preds = [Range("production_year", low=lo, high=lo + int(rng.integers(3, 30)))]
            if rng.random() < 0.3:
                preds.append(Range("episode_nr", high=int(rng.integers(1, 20))))
            q.add_predicate("t", preds[0] if len(preds) == 1 else And(preds))
        if dims_used == 0:
            continue  # JOB-M queries always reach at least one dimension
        queries.append(q)
    return queries


def make_job_m(
    db: Database | None = None,
    scale: float = 1.0,
    num_queries: int = 113,
    seed: int = 1,
) -> Workload:
    """The JOB-M workload (113 queries over 16 tables at paper scale)."""
    db = db if db is not None else make_imdb(scale=scale, seed=seed)
    queries = generate_job_m_queries(db, num_queries, seed + 59)
    return Workload("JOB-M", db, queries)
