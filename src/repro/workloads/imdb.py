"""Synthetic IMDB: the database under JOB-Light, JOB-LightRanges and JOB-M.

16 tables mirroring the IMDB schema the paper evaluates on, with the skew
and correlation structure of the real data (see ``generator.py``):

* movie popularity is Zipf-distributed and *correlated with recency and
  kind* — so predicates on ``title`` select systematically high- or
  low-degree join values;
* production year is strongly correlated with kind (TV episodes are
  recent), which defeats per-column independence;
* fact-table attributes (role, info type, company type) correlate with
  the dimension rows they reference.

``scale`` multiplies every table's row count.
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.schema import Schema
from ..db.table import Table
from .generator import (
    correlated_int,
    date_like_strings,
    popularity_weights,
    random_words,
    weighted_keys,
    zipf_keys,
)

__all__ = ["make_imdb", "JOB_LIGHT_TABLES", "JOB_M_TABLES"]

JOB_LIGHT_TABLES = [
    "title",
    "cast_info",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "movie_companies",
]

JOB_M_TABLES = JOB_LIGHT_TABLES + [
    "kind_type",
    "info_type",
    "keyword",
    "company_name",
    "company_type",
    "name",
    "role_type",
    "aka_name",
    "movie_link",
    "link_type",
]

_KINDS = ["movie", "tv series", "tv movie", "video movie", "episode", "video game", "short"]
_ROLES = [
    "actor", "actress", "producer", "writer", "cinematographer", "composer",
    "costume designer", "director", "editor", "miscellaneous crew", "production designer", "guest",
]
_COMPANY_KINDS = ["production companies", "distributors", "special effects", "miscellaneous"]
_LINKS = ["sequel", "prequel", "remake", "spin off", "follows", "version of"]
_COUNTRIES = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[it]", "[ca]", "[es]", "[se]"]
_INFO_KINDS = ["genres", "countries", "languages", "rating", "votes", "budget", "runtime"]


def _imdb_schema() -> Schema:
    schema = Schema()
    # Several foreign-key columns double as predicate targets in JOB-Light
    # (role_id, info_type_id, ...), so they are declared as both join and
    # filter columns — the paper notes a column can be both (Sec 3.1).
    schema.add_table(
        "title",
        primary_key="id",
        join_columns=["id", "kind_id"],
        filter_columns=[
            "kind_id",
            "production_year",
            "episode_nr",
            "season_nr",
            "phonetic_code",
            "series_years",
            "imdb_index",
        ],
    )
    schema.add_table("kind_type", primary_key="id", filter_columns=["kind"])
    schema.add_table(
        "cast_info",
        join_columns=["movie_id", "person_id", "role_id"],
        filter_columns=["role_id", "nr_order"],
    )
    schema.add_table("name", primary_key="id", filter_columns=["name", "gender"])
    schema.add_table("role_type", primary_key="id", filter_columns=["role"])
    schema.add_table(
        "movie_info",
        join_columns=["movie_id", "info_type_id"],
        filter_columns=["info_type_id", "info"],
    )
    schema.add_table(
        "movie_info_idx",
        join_columns=["movie_id", "info_type_id"],
        filter_columns=["info_type_id", "info"],
    )
    schema.add_table("info_type", primary_key="id", filter_columns=["info"])
    schema.add_table(
        "movie_keyword",
        join_columns=["movie_id", "keyword_id"],
        filter_columns=["keyword_id"],
    )
    schema.add_table("keyword", primary_key="id", filter_columns=["keyword"])
    schema.add_table(
        "movie_companies",
        join_columns=["movie_id", "company_id", "company_type_id"],
        filter_columns=["company_type_id", "note"],
    )
    schema.add_table(
        "company_name", primary_key="id", filter_columns=["name", "country_code"]
    )
    schema.add_table("company_type", primary_key="id", filter_columns=["kind"])
    schema.add_table("aka_name", join_columns=["person_id"], filter_columns=["name"])
    schema.add_table(
        "movie_link", join_columns=["movie_id", "linked_movie_id", "link_type_id"]
    )
    schema.add_table("link_type", primary_key="id", filter_columns=["link"])

    schema.add_foreign_key("title", "kind_id", "kind_type", "id")
    schema.add_foreign_key("cast_info", "movie_id", "title", "id")
    schema.add_foreign_key("cast_info", "person_id", "name", "id")
    schema.add_foreign_key("cast_info", "role_id", "role_type", "id")
    schema.add_foreign_key("movie_info", "movie_id", "title", "id")
    schema.add_foreign_key("movie_info", "info_type_id", "info_type", "id")
    schema.add_foreign_key("movie_info_idx", "movie_id", "title", "id")
    schema.add_foreign_key("movie_info_idx", "info_type_id", "info_type", "id")
    schema.add_foreign_key("movie_keyword", "movie_id", "title", "id")
    schema.add_foreign_key("movie_keyword", "keyword_id", "keyword", "id")
    schema.add_foreign_key("movie_companies", "movie_id", "title", "id")
    schema.add_foreign_key("movie_companies", "company_id", "company_name", "id")
    schema.add_foreign_key("movie_companies", "company_type_id", "company_type", "id")
    schema.add_foreign_key("aka_name", "person_id", "name", "id")
    schema.add_foreign_key("movie_link", "movie_id", "title", "id")
    schema.add_foreign_key("movie_link", "linked_movie_id", "title", "id")
    schema.add_foreign_key("movie_link", "link_type_id", "link_type", "id")
    return schema


def make_imdb(scale: float = 1.0, seed: int = 1) -> Database:
    """Build the synthetic IMDB instance."""
    rng = np.random.default_rng(seed)
    schema = _imdb_schema()
    db = Database(schema)

    n_title = max(int(6000 * scale), 50)
    n_name = max(int(8000 * scale), 50)
    n_keyword = max(int(1500 * scale), 20)
    n_company = max(int(1200 * scale), 20)

    # --- dimension tables -------------------------------------------------
    db.add_table(
        Table("kind_type", {"id": np.arange(len(_KINDS)), "kind": np.array(_KINDS, dtype=object)})
    )
    db.add_table(
        Table("role_type", {"id": np.arange(len(_ROLES)), "role": np.array(_ROLES, dtype=object)})
    )
    db.add_table(
        Table(
            "company_type",
            {"id": np.arange(len(_COMPANY_KINDS)), "kind": np.array(_COMPANY_KINDS, dtype=object)},
        )
    )
    db.add_table(
        Table("link_type", {"id": np.arange(len(_LINKS)), "link": np.array(_LINKS, dtype=object)})
    )
    info_kinds = np.array(
        [_INFO_KINDS[i % len(_INFO_KINDS)] + (f" #{i // len(_INFO_KINDS)}" if i >= len(_INFO_KINDS) else "") for i in range(21)],
        dtype=object,
    )
    db.add_table(Table("info_type", {"id": np.arange(len(info_kinds)), "info": info_kinds}))

    # --- title ------------------------------------------------------------
    kind_id = zipf_keys(rng, 1.7, n_title, len(_KINDS))
    # TV kinds (1, 4) skew recent; movies span the century.
    base_year = np.where(
        np.isin(kind_id, [1, 4]),
        rng.integers(1995, 2020, n_title),
        rng.integers(1930, 2020, n_title),
    )
    production_year = correlated_int(rng, base_year, 1930, 2019, strength=0.95, noise=2)
    is_episode = (kind_id == 4).astype(int)
    episode_nr = np.where(is_episode, rng.integers(1, 25, n_title), 0)
    season_nr = np.where(is_episode, np.clip(episode_nr // 5 + rng.integers(0, 3, n_title), 1, 30), 0)
    phonetic_code = np.array(
        [f"{chr(65 + int(k))}{int(p) % 625}" for k, p in zip(kind_id, rng.integers(0, 625, n_title))],
        dtype=object,
    )
    series_years = date_like_strings(rng, n_title)
    series_years[is_episode == 0] = ""
    imdb_index = np.array(
        [["", "I", "II", "III"][i] for i in rng.choice(4, n_title, p=[0.9, 0.06, 0.03, 0.01])],
        dtype=object,
    )
    db.add_table(
        Table(
            "title",
            {
                "id": np.arange(n_title),
                "kind_id": kind_id,
                "production_year": production_year,
                "episode_nr": episode_nr,
                "season_nr": season_nr,
                "phonetic_code": phonetic_code,
                "series_years": series_years,
                "imdb_index": imdb_index,
            },
        )
    )
    # Popularity: recent movies and low ids are more referenced.
    recency = (production_year - production_year.min() + 1).astype(float)
    popularity = popularity_weights(rng, n_title, 1.05) * (recency / recency.mean())
    popularity /= popularity.sum()

    # --- name / keyword / company_name ------------------------------------
    person_name = random_words(rng, n_name, vocabulary=800, zipf_alpha=1.1)
    gender = np.array(
        [["m", "f", ""][i] for i in rng.choice(3, n_name, p=[0.55, 0.35, 0.10])], dtype=object
    )
    db.add_table(Table("name", {"id": np.arange(n_name), "name": person_name, "gender": gender}))
    db.add_table(
        Table(
            "keyword",
            {"id": np.arange(n_keyword), "keyword": random_words(rng, n_keyword, vocabulary=600, zipf_alpha=1.0)},
        )
    )
    db.add_table(
        Table(
            "company_name",
            {
                "id": np.arange(n_company),
                "name": random_words(rng, n_company, vocabulary=400, zipf_alpha=1.0),
                "country_code": np.array(
                    [_COUNTRIES[min(i * len(_COUNTRIES) // n_company, len(_COUNTRIES) - 1)] for i in range(n_company)],
                    dtype=object,
                ),
            },
        )
    )

    # --- fact tables --------------------------------------------------------
    n_ci = max(int(30000 * scale), 100)
    movie_id = weighted_keys(rng, popularity, n_ci)
    person_pop = popularity_weights(rng, n_name, 1.2)
    person_id = weighted_keys(rng, person_pop, n_ci)
    # Role correlates with gender: actresses get role 1, actors role 0.
    g = np.array([{"m": 0, "f": 1}.get(x, 2) for x in gender[person_id]], dtype=np.int64)
    role_id = np.where(
        rng.random(n_ci) < 0.7, np.clip(g, 0, 1), zipf_keys(rng, 1.4, n_ci, len(_ROLES))
    )
    db.add_table(
        Table(
            "cast_info",
            {
                "id": np.arange(n_ci),
                "movie_id": movie_id,
                "person_id": person_id,
                "role_id": role_id,
                "nr_order": rng.integers(0, 50, n_ci),
            },
        )
    )

    for tname, n_rows, info_alpha in (("movie_info", int(24000 * scale), 1.2), ("movie_info_idx", int(8000 * scale), 1.5)):
        n_rows = max(n_rows, 60)
        mid = weighted_keys(rng, popularity, n_rows)
        itype = zipf_keys(rng, info_alpha, n_rows, len(info_kinds))
        # Info text depends on the info type (correlated string content).
        words = random_words(rng, n_rows, vocabulary=300, zipf_alpha=1.1)
        info = np.array(
            [f"{info_kinds[t].split()[0]}:{w}" for t, w in zip(itype, words)], dtype=object
        )
        db.add_table(
            Table(
                tname,
                {"id": np.arange(n_rows), "movie_id": mid, "info_type_id": itype, "info": info},
            )
        )

    n_mk = max(int(15000 * scale), 60)
    # Popular keywords attach to popular movies: rank-correlated sampling.
    mid = weighted_keys(rng, popularity, n_mk)
    kw_pop = popularity_weights(rng, n_keyword, 1.15)
    kw_rank = np.argsort(np.argsort(-popularity)[mid])  # movie popularity rank per row
    kid = weighted_keys(rng, kw_pop, n_mk)
    boost = rng.random(n_mk) < 0.4
    kid[boost] = (kw_rank[boost] * n_keyword // max(n_mk, 1)) % n_keyword
    db.add_table(
        Table("movie_keyword", {"id": np.arange(n_mk), "movie_id": mid, "keyword_id": kid})
    )

    n_mc = max(int(9000 * scale), 60)
    mid = weighted_keys(rng, popularity, n_mc)
    comp_pop = popularity_weights(rng, n_company, 1.2)
    cid = weighted_keys(rng, comp_pop, n_mc)
    ctype = np.where(cid < n_company // 4, 0, zipf_keys(rng, 1.5, n_mc, len(_COMPANY_KINDS)))
    note = np.array(
        [f"(pres. {y})" if f else "" for y, f in zip(rng.integers(1950, 2020, n_mc), rng.random(n_mc) < 0.3)],
        dtype=object,
    )
    db.add_table(
        Table(
            "movie_companies",
            {
                "id": np.arange(n_mc),
                "movie_id": mid,
                "company_id": cid,
                "company_type_id": ctype,
                "note": note,
            },
        )
    )

    n_an = max(int(5000 * scale), 40)
    pid = weighted_keys(rng, person_pop, n_an)
    db.add_table(
        Table(
            "aka_name",
            {
                "id": np.arange(n_an),
                "person_id": pid,
                "name": random_words(rng, n_an, vocabulary=800, zipf_alpha=1.1),
            },
        )
    )

    n_ml = max(int(2500 * scale), 30)
    db.add_table(
        Table(
            "movie_link",
            {
                "id": np.arange(n_ml),
                "movie_id": weighted_keys(rng, popularity, n_ml),
                "linked_movie_id": weighted_keys(rng, popularity, n_ml),
                "link_type_id": zipf_keys(rng, 1.5, n_ml, len(_LINKS)),
            },
        )
    )
    return db
