"""TPC-H-like generator for the scalability study (Fig 10, Sec 5.5).

8 tables, 14 join columns, 46 filter columns and 9 PK-FK relationships at
``scale_factor`` proportional row counts — exactly the structural facts
the paper cites.  Fig 10 measures SafeBound's statistics construction time
as the scale factor grows, with and without trigram (string) statistics;
the data itself is uniform/independent, which is why the paper excludes it
from the runtime benchmarks (footnote 5).
"""

from __future__ import annotations

import numpy as np

from ..db.database import Database
from ..db.schema import Schema
from ..db.table import Table
from .generator import Workload, random_words, zipf_keys
from ..db.query import Query
from ..core.predicates import Range

__all__ = ["make_tpch", "make_tpch_db"]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_STATUSES = ["F", "O", "P"]


def make_tpch_db(scale_factor: float = 0.01, seed: int = 9) -> Database:
    """A TPC-H instance; ``scale_factor=1.0`` would be dbgen's 1GB shape
    (laptop-scaled: row counts are 1/100 of dbgen's per unit sf)."""
    rng = np.random.default_rng(seed)
    schema = Schema()
    schema.add_table("region", primary_key="r_regionkey", filter_columns=["r_name", "r_comment"])
    schema.add_table("nation", primary_key="n_nationkey", join_columns=["n_regionkey"], filter_columns=["n_name", "n_comment"])
    schema.add_table("supplier", primary_key="s_suppkey", join_columns=["s_nationkey"], filter_columns=["s_acctbal", "s_name", "s_comment"])
    schema.add_table("customer", primary_key="c_custkey", join_columns=["c_nationkey"], filter_columns=["c_acctbal", "c_mktsegment", "c_name", "c_comment"])
    schema.add_table("part", primary_key="p_partkey", filter_columns=["p_size", "p_retailprice", "p_name", "p_comment"])
    schema.add_table("partsupp", join_columns=["ps_partkey", "ps_suppkey"], filter_columns=["ps_availqty", "ps_supplycost", "ps_comment"])
    schema.add_table("orders", primary_key="o_orderkey", join_columns=["o_custkey"], filter_columns=["o_totalprice", "o_orderdate", "o_orderpriority", "o_orderstatus", "o_comment"])
    schema.add_table("lineitem", join_columns=["l_orderkey", "l_partkey", "l_suppkey"], filter_columns=["l_quantity", "l_extendedprice", "l_discount", "l_shipdate", "l_comment"])
    schema.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey")
    schema.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey")
    schema.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey")
    schema.add_foreign_key("partsupp", "ps_partkey", "part", "p_partkey")
    schema.add_foreign_key("partsupp", "ps_suppkey", "supplier", "s_suppkey")
    schema.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    schema.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    schema.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    schema.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey")
    db = Database(schema)

    def comments(n):
        return random_words(rng, n, vocabulary=250, zipf_alpha=1.0)

    db.add_table(Table("region", {
        "r_regionkey": np.arange(5),
        "r_name": np.array(_REGIONS, dtype=object),
        "r_comment": comments(5),
    }))
    db.add_table(Table("nation", {
        "n_nationkey": np.arange(25),
        "n_regionkey": rng.integers(0, 5, 25),
        "n_name": random_words(rng, 25, vocabulary=25),
        "n_comment": comments(25),
    }))

    n_supp = max(int(100 * scale_factor * 100), 10)
    n_cust = max(int(1500 * scale_factor * 10), 15)
    n_part = max(int(2000 * scale_factor * 10), 20)
    n_ps = n_part * 4
    n_ord = max(int(15000 * scale_factor * 10), 30)
    n_li = n_ord * 4

    db.add_table(Table("supplier", {
        "s_suppkey": np.arange(n_supp),
        "s_nationkey": rng.integers(0, 25, n_supp),
        "s_acctbal": np.round(rng.uniform(-999, 9999, n_supp), 2),
        "s_name": random_words(rng, n_supp, vocabulary=300),
        "s_comment": comments(n_supp),
    }))
    db.add_table(Table("customer", {
        "c_custkey": np.arange(n_cust),
        "c_nationkey": rng.integers(0, 25, n_cust),
        "c_acctbal": np.round(rng.uniform(-999, 9999, n_cust), 2),
        "c_mktsegment": np.array([_SEGMENTS[i] for i in rng.integers(0, 5, n_cust)], dtype=object),
        "c_name": random_words(rng, n_cust, vocabulary=300),
        "c_comment": comments(n_cust),
    }))
    db.add_table(Table("part", {
        "p_partkey": np.arange(n_part),
        "p_size": rng.integers(1, 51, n_part),
        "p_retailprice": np.round(rng.uniform(900, 2000, n_part), 2),
        "p_name": random_words(rng, n_part, vocabulary=400),
        "p_comment": comments(n_part),
    }))
    db.add_table(Table("partsupp", {
        "id": np.arange(n_ps),
        "ps_partkey": np.repeat(np.arange(n_part), 4),
        "ps_suppkey": rng.integers(0, n_supp, n_ps),
        "ps_availqty": rng.integers(1, 10000, n_ps),
        "ps_supplycost": np.round(rng.uniform(1, 1000, n_ps), 2),
        "ps_comment": comments(n_ps),
    }))
    db.add_table(Table("orders", {
        "o_orderkey": np.arange(n_ord),
        "o_custkey": zipf_keys(rng, 1.1, n_ord, n_cust),
        "o_totalprice": np.round(rng.uniform(900, 500000, n_ord), 2),
        "o_orderdate": rng.integers(8036, 10592, n_ord),  # days
        "o_orderpriority": np.array([_PRIORITIES[i] for i in rng.integers(0, 5, n_ord)], dtype=object),
        "o_orderstatus": np.array([_STATUSES[i] for i in rng.integers(0, 3, n_ord)], dtype=object),
        "o_comment": comments(n_ord),
    }))
    db.add_table(Table("lineitem", {
        "id": np.arange(n_li),
        "l_orderkey": np.repeat(np.arange(n_ord), 4),
        "l_partkey": rng.integers(0, n_part, n_li),
        "l_suppkey": rng.integers(0, n_supp, n_li),
        "l_quantity": rng.integers(1, 51, n_li),
        "l_extendedprice": np.round(rng.uniform(900, 100000, n_li), 2),
        "l_discount": np.round(rng.uniform(0, 0.1, n_li), 2),
        "l_shipdate": rng.integers(8036, 10592, n_li),
        "l_comment": comments(n_li),
    }))
    return db


def generate_tpch_queries(db: Database, num_queries: int = 20, seed: int = 90) -> list[Query]:
    """Simple validation queries (the paper uses TPC-H only for Fig 10)."""
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(num_queries):
        q = Query(name=f"tpch_{i:02d}")
        q.add_relation("l", "lineitem").add_relation("o", "orders")
        q.add_join("l", "l_orderkey", "o", "o_orderkey")
        if rng.random() < 0.5:
            q.add_relation("c", "customer")
            q.add_join("o", "o_custkey", "c", "c_custkey")
        date = int(rng.integers(8036, 10592))
        q.add_predicate("o", Range("o_orderdate", low=date, high=date + int(rng.integers(30, 400))))
        if rng.random() < 0.5:
            q.add_predicate("l", Range("l_quantity", high=int(rng.integers(5, 40))))
        queries.append(q)
    return queries


def make_tpch(scale_factor: float = 0.01, num_queries: int = 20, seed: int = 9) -> Workload:
    db = make_tpch_db(scale_factor, seed)
    return Workload(f"TPC-H(sf={scale_factor})", db, generate_tpch_queries(db, num_queries, seed + 1))
