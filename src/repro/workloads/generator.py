"""Seeded data-generation primitives shared by all synthetic workloads.

The paper's phenomena rest on three distributional properties of real data
that these helpers reproduce:

* **skew** — join-column degree sequences are Zipf-like (a few movies have
  thousands of cast entries);
* **cross-column correlation** — filter columns predict each other (genre
  predicts production year), which breaks Postgres' independence
  assumption;
* **filter/join correlation** — predicates select high- or low-degree
  join values (popular keywords attach to popular movies), which breaks
  uniformity and motivates SafeBound's conditioned degree sequences.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Workload",
    "zipf_keys",
    "correlated_int",
    "popularity_weights",
    "weighted_keys",
    "random_words",
    "date_like_strings",
]

from dataclasses import dataclass, field

from ..db.database import Database
from ..db.query import Query


@dataclass
class Workload:
    """A benchmark: a database plus a list of queries."""

    name: str
    db: Database
    queries: list[Query] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, tables={len(self.db.tables)}, queries={len(self.queries)})"


def zipf_keys(rng: np.random.Generator, alpha: float, size: int, domain: int) -> np.ndarray:
    """Zipf-distributed foreign keys over ``[0, domain)``.

    Smaller key = more popular, so popularity aligns across tables drawn
    with the same domain (the worst-case-instance flavour of real data).
    """
    raw = rng.zipf(alpha, size) - 1
    return (raw % domain).astype(np.int64)


def popularity_weights(rng: np.random.Generator, domain: int, alpha: float = 1.1) -> np.ndarray:
    """Per-key sampling weights with Zipf-ish decay plus noise."""
    ranks = np.arange(1, domain + 1, dtype=float)
    weights = ranks**-alpha
    weights *= rng.uniform(0.5, 1.5, domain)
    return weights / weights.sum()


def weighted_keys(
    rng: np.random.Generator, weights: np.ndarray, size: int
) -> np.ndarray:
    """Foreign keys drawn from explicit per-key weights."""
    return rng.choice(len(weights), size=size, p=weights).astype(np.int64)


def correlated_int(
    rng: np.random.Generator,
    base: np.ndarray,
    low: int,
    high: int,
    strength: float = 0.8,
    noise: int = 5,
) -> np.ndarray:
    """An integer column correlated with ``base``.

    ``strength`` in [0, 1] interpolates between pure noise and a
    deterministic affine function of ``base``; Postgres' independence
    assumption fails in proportion to it.
    """
    base = base.astype(float)
    lo_b, hi_b = float(base.min()), float(base.max())
    span_b = max(hi_b - lo_b, 1.0)
    mapped = low + (base - lo_b) / span_b * (high - low)
    noisy = mapped + rng.integers(-noise, noise + 1, len(base))
    uniform = rng.integers(low, high + 1, len(base)).astype(float)
    mixed = np.where(rng.random(len(base)) < strength, noisy, uniform)
    return np.clip(np.round(mixed), low, high).astype(np.int64)


_SYLLABLES = [
    "an", "bar", "cor", "dan", "el", "fur", "gor", "hul", "in", "jo",
    "kar", "lum", "mor", "nor", "ol", "pra", "qui", "ran", "sol", "tur",
    "ul", "vor", "wen", "xan", "yor", "zan", "the", "ing", "ter", "ron",
]


def random_words(
    rng: np.random.Generator,
    size: int,
    vocabulary: int = 500,
    syllables: tuple[int, int] = (2, 4),
    zipf_alpha: float = 1.3,
) -> np.ndarray:
    """A string column drawn from a Zipf-weighted synthetic vocabulary."""
    vocab = []
    for i in range(vocabulary):
        word_rng = np.random.default_rng(i * 7919 + 13)
        n = int(word_rng.integers(syllables[0], syllables[1] + 1))
        parts = [_SYLLABLES[int(word_rng.integers(0, len(_SYLLABLES)))] for _ in range(n)]
        vocab.append("".join(parts) + (str(i % 97) if i % 3 == 0 else ""))
    weights = popularity_weights(rng, vocabulary, zipf_alpha)
    idx = rng.choice(vocabulary, size=size, p=weights)
    return np.array([vocab[i] for i in idx], dtype=object)


def date_like_strings(rng: np.random.Generator, size: int, lo: int = 1950, hi: int = 2020) -> np.ndarray:
    """Strings like ``"1994-1999"`` (the series_years column of IMDB)."""
    start = rng.integers(lo, hi, size)
    length = rng.integers(0, 12, size)
    out = np.empty(size, dtype=object)
    for i in range(size):
        if length[i] == 0:
            out[i] = ""
        else:
            out[i] = f"{start[i]}-{min(start[i] + length[i], hi)}"
    return out
