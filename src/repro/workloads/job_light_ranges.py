"""JOB-LightRanges: 1000 queries over the JOB-Light tables with additional
columns and *string* predicates (Sec 5, Datasets).

Relative to JOB-Light it adds range predicates over the episode/season
columns and equality/LIKE predicates over ``phonetic_code``,
``series_years`` and ``imdb_index`` — the workload that exercises
SafeBound's trigram statistics.
"""

from __future__ import annotations

import numpy as np

from ..core.predicates import And, Eq, Like, Predicate
from ..db.database import Database
from ..db.query import Query
from .generator import Workload
from .imdb import make_imdb
from .job_light import FACT_TABLES, _NUMERIC_PREDICATES, _numeric_predicate

__all__ = ["make_job_light_ranges"]

_STRING_PREDICATES = {
    "t": ["phonetic_code", "series_years", "imdb_index"],
    "mi": ["info"],
    "mi_idx": ["info"],
    "mc": ["note"],
}


def _string_predicate(
    rng: np.random.Generator, db: Database, table: str, column: str
) -> Predicate:
    values = db.table(table).column(column)
    value = ""
    for _ in range(10):
        value = values[rng.integers(0, len(values))]
        if isinstance(value, str) and value:
            break
    if not isinstance(value, str) or not value:
        value = "I"
    if rng.random() < 0.8 and len(value) >= 3:
        # Short (3-4 char) substrings keep LIKE selectivity moderate, as in
        # the real benchmark where patterns match many titles.
        start = int(rng.integers(0, max(len(value) - 3, 1)))
        length = int(rng.integers(3, min(len(value) - start, 4) + 1))
        return Like(column, value[start : start + length])
    return Eq(column, value)


def generate_job_light_ranges_queries(
    db: Database, num_queries: int = 1000, seed: int = 40
) -> list[Query]:
    rng = np.random.default_rng(seed)
    queries: list[Query] = []
    aliases = list(FACT_TABLES)
    while len(queries) < num_queries:
        q = Query(name=f"job_light_ranges_{len(queries):04d}")
        q.add_relation("t", "title")
        num_facts = int(rng.integers(1, 5))
        chosen = list(rng.choice(aliases, size=num_facts, replace=False))
        for alias in chosen:
            q.add_relation(alias, FACT_TABLES[alias])
            q.add_join(alias, "movie_id", "t", "id")
        per_alias: dict[str, list] = {}
        used = set()
        num_numeric = int(rng.integers(1, 4))
        pool = [("t", c, k) for c, k in _NUMERIC_PREDICATES["t"]]
        for alias in chosen:
            pool += [(alias, c, k) for c, k in _NUMERIC_PREDICATES[alias]]
        rng.shuffle(pool)
        for alias, column, kind in pool[:num_numeric]:
            if (alias, column) in used:
                continue
            used.add((alias, column))
            pred = _numeric_predicate(rng, db, q.relations[alias], column, kind)
            per_alias.setdefault(alias, []).append(pred)
        # At least one string predicate distinguishes this workload.
        spool = [("t", c) for c in _STRING_PREDICATES["t"]]
        for alias in chosen:
            spool += [(alias, c) for c in _STRING_PREDICATES.get(alias, [])]
        rng.shuffle(spool)
        num_string = int(rng.integers(1, 3))
        for alias, column in spool[:num_string]:
            if (alias, column) in used:
                continue
            used.add((alias, column))
            pred = _string_predicate(rng, db, q.relations[alias], column)
            per_alias.setdefault(alias, []).append(pred)
        for alias, preds in per_alias.items():
            q.add_predicate(alias, preds[0] if len(preds) == 1 else And(preds))
        queries.append(q)
    return queries


def make_job_light_ranges(
    db: Database | None = None,
    scale: float = 1.0,
    num_queries: int = 1000,
    seed: int = 1,
) -> Workload:
    """The JOB-LightRanges workload (1000 queries at paper scale)."""
    db = db if db is not None else make_imdb(scale=scale, seed=seed)
    queries = generate_job_light_ranges_queries(db, num_queries, seed + 41)
    return Workload("JOB-LightRanges", db, queries)
