"""The database object: tables + schema."""

from __future__ import annotations

from .schema import Schema
from .table import Table

__all__ = ["Database"]


class Database:
    """An in-memory database instance."""

    def __init__(self, schema: Schema | None = None) -> None:
        self.schema = schema or Schema()
        self.tables: dict[str, Table] = {}

    def add_table(self, table: Table) -> None:
        if table.name not in self.schema.tables:
            raise KeyError(f"no schema declared for table {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        return self.tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> list[str]:
        return list(self.tables)

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())

    def memory_bytes(self) -> int:
        return sum(t.memory_bytes() for t in self.tables.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{t.num_rows}" for n, t in self.tables.items())
        return f"Database({parts})"
