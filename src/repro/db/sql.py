"""A small SQL front-end for the query model.

Parses the fragment the paper's benchmarks are written in — full
conjunctive ``SELECT *`` queries with equi-joins and the five supported
predicate classes:

    SELECT * FROM title t, cast_info ci, movie_keyword mk
    WHERE ci.movie_id = t.id AND mk.movie_id = t.id
      AND t.production_year >= 1990 AND t.production_year <= 2005
      AND t.kind_id = 4
      AND t.phonetic_code LIKE '%A12%'
      AND ci.role_id IN (1, 2)
      AND (t.season_nr = 1 OR t.season_nr = 2)

Supported WHERE syntax: ``=``, ``<``, ``<=``, ``>``, ``>=``, ``BETWEEN x
AND y``, ``LIKE '%text%'``, ``IN (v, ...)``, ``AND``, ``OR`` and
parentheses.  Every comparison must reference exactly one aliased column
(``alias.column``); ``a.x = b.y`` between two aliases is an equi-join.
"""

from __future__ import annotations

import re

from ..core.predicates import And, Eq, InList, Like, Or, Predicate, Range
from .query import Query

__all__ = ["parse_sql", "SqlParseError"]


class SqlParseError(ValueError):
    """Raised for SQL the fragment does not cover."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'          # string literal
      | -?\d+\.\d+              # float
      | -?\d+                   # int
      | [A-Za-z_][\w]*\.[A-Za-z_][\w]*   # alias.column
      | [A-Za-z_][\w]*          # identifier / keyword
      | <= | >= | <> | !=
      | [(),=<>*;]
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "or", "in", "like", "between", "not", "as",
}


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise SqlParseError(f"cannot tokenize near: {text[pos:pos + 25]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token.lower() != expected.lower():
            raise SqlParseError(f"expected {expected!r}, got {token!r}")

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == word

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Query:
        self.expect("select")
        self.expect("*")
        self.expect("from")
        query = Query()
        self._parse_from(query)
        if self.at_keyword("where"):
            self.next()
            predicate_tree = self._parse_or(query)
            self._distribute(query, predicate_tree)
        if self.peek() == ";":
            self.next()
        if self.peek() is not None:
            raise SqlParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return query

    def _parse_from(self, query: Query) -> None:
        while True:
            table = self.next()
            if table.lower() in _KEYWORDS or not table.isidentifier():
                raise SqlParseError(f"bad table name {table!r}")
            alias = table
            token = self.peek()
            if token is not None and token.lower() == "as":
                self.next()
                alias = self.next()
            elif token is not None and token.isidentifier() and token.lower() not in _KEYWORDS:
                alias = self.next()
            query.add_relation(alias, table)
            if self.peek() == ",":
                self.next()
                continue
            break

    # predicate grammar: or_expr := and_expr (OR and_expr)*
    def _parse_or(self, query: Query):
        parts = [self._parse_and(query)]
        while self.at_keyword("or"):
            self.next()
            parts.append(self._parse_and(query))
        return ("or", parts) if len(parts) > 1 else parts[0]

    def _parse_and(self, query: Query):
        parts = [self._parse_atom(query)]
        while self.at_keyword("and"):
            self.next()
            parts.append(self._parse_atom(query))
        return ("and", parts) if len(parts) > 1 else parts[0]

    def _parse_atom(self, query: Query):
        if self.peek() == "(":
            self.next()
            inner = self._parse_or(query)
            self.expect(")")
            return inner
        left = self.next()
        if "." not in left:
            raise SqlParseError(f"expected alias.column, got {left!r}")
        alias, column = left.split(".", 1)
        op_token = self.next().lower()
        if op_token == "between":
            low = self._literal(self.next())
            self.expect("and")
            high = self._literal(self.next())
            return ("pred", alias, Range(column, low=low, high=high))
        if op_token == "like":
            pattern = self._string(self.next())
            return ("pred", alias, Like(column, pattern.strip("%")))
        if op_token == "in":
            self.expect("(")
            values = [self._literal(self.next())]
            while self.peek() == ",":
                self.next()
                values.append(self._literal(self.next()))
            self.expect(")")
            return ("pred", alias, InList(column, values))
        if op_token in ("=", "<", "<=", ">", ">="):
            right = self.next()
            if "." in right and not self._is_number(right):
                # equi-join between two aliased columns
                if op_token != "=":
                    raise SqlParseError("only equality joins are supported")
                r_alias, r_column = right.split(".", 1)
                return ("join", alias, column, r_alias, r_column)
            value = self._literal(right)
            if op_token == "=":
                return ("pred", alias, Eq(column, value))
            if op_token == "<":
                return ("pred", alias, Range(column, high=value, high_inclusive=False))
            if op_token == "<=":
                return ("pred", alias, Range(column, high=value))
            if op_token == ">":
                return ("pred", alias, Range(column, low=value, low_inclusive=False))
            return ("pred", alias, Range(column, low=value))
        raise SqlParseError(f"unsupported operator {op_token!r}")

    # -- literal handling --------------------------------------------------
    @staticmethod
    def _is_number(token: str) -> bool:
        try:
            float(token)
            return True
        except ValueError:
            return False

    def _literal(self, token: str):
        if token.startswith("'"):
            return self._string(token)
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if self._is_number(token):
            return float(token)
        raise SqlParseError(f"bad literal {token!r}")

    @staticmethod
    def _string(token: str) -> str:
        if not (token.startswith("'") and token.endswith("'")):
            raise SqlParseError(f"expected string literal, got {token!r}")
        return token[1:-1].replace("''", "'")

    # -- assembling the query ----------------------------------------------
    def _distribute(self, query: Query, tree) -> None:
        """Attach joins and per-alias predicates from the parsed tree.

        Joins may only appear at the top-level conjunction; predicate
        subtrees must reference a single alias (the paper's per-relation
        predicate model, Sec 2.1).
        """
        conjuncts = tree[1] if isinstance(tree, tuple) and tree[0] == "and" else [tree]
        per_alias: dict[str, list[Predicate]] = {}
        for node in conjuncts:
            if node[0] == "join":
                _, a, ca, b, cb = node
                for x in (a, b):
                    if x not in query.relations:
                        raise SqlParseError(f"unknown alias {x!r} in join")
                query.add_join(a, ca, b, cb)
            else:
                alias, predicate = self._to_predicate(query, node)
                per_alias.setdefault(alias, []).append(predicate)
        for alias, preds in per_alias.items():
            query.add_predicate(alias, preds[0] if len(preds) == 1 else And(preds))

    def _to_predicate(self, query: Query, node) -> tuple[str, Predicate]:
        if node[0] == "pred":
            _, alias, predicate = node
            if alias not in query.relations:
                raise SqlParseError(f"unknown alias {alias!r}")
            return alias, predicate
        if node[0] == "join":
            raise SqlParseError("joins may not appear under OR or nested parentheses")
        kind, children = node
        parts = [self._to_predicate(query, c) for c in children]
        aliases = {a for a, _ in parts}
        if len(aliases) != 1:
            raise SqlParseError(
                "predicate subtrees must reference a single relation "
                f"(got aliases {sorted(aliases)})"
            )
        alias = aliases.pop()
        preds = [p for _, p in parts]
        return alias, (And(preds) if kind == "and" else Or(preds))


def parse_sql(text: str) -> Query:
    """Parse a conjunctive ``SELECT *`` query into a :class:`Query`."""
    return _Parser(_tokenize(text)).parse()
