"""In-memory relational substrate: tables, schema, queries, executor."""

from .database import Database
from .executor import CardinalityOverflow, Executor
from .query import ColumnRef, Join, Query
from .schema import ForeignKey, Schema, TableSchema
from .sql import SqlParseError, parse_sql
from .table import Table

__all__ = [
    "Database",
    "Executor",
    "CardinalityOverflow",
    "Query",
    "Join",
    "ColumnRef",
    "Schema",
    "TableSchema",
    "ForeignKey",
    "Table",
    "parse_sql",
    "SqlParseError",
]
