"""Schema metadata: join-able columns and PK-FK relationships.

SafeBound's offline phase needs to know which columns are keys and foreign
keys ("declared join columns", Sec 3.1) and which PK-FK edges exist (for
the pre-computed PK join optimization, Sec 4.2).  The optimizer also reads
the schema to know which indexes exist (Fig 9a study).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ForeignKey", "TableSchema", "Schema"]


@dataclass(frozen=True)
class ForeignKey:
    """``table.column`` references ``ref_table.ref_column`` (a primary key)."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __repr__(self) -> str:
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


@dataclass
class TableSchema:
    """Per-table metadata.

    ``join_columns`` is the declared join-column set (keys + foreign keys);
    ``filter_columns`` are the columns predicates may touch.  Any column not
    listed can still be joined on via the undeclared-column fallback
    (Sec 3.6).
    """

    name: str
    primary_key: str | None = None
    join_columns: list[str] = field(default_factory=list)
    filter_columns: list[str] = field(default_factory=list)


@dataclass
class Schema:
    """A database schema: table schemas plus foreign-key edges."""

    tables: dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_table(
        self,
        name: str,
        primary_key: str | None = None,
        join_columns: list[str] | None = None,
        filter_columns: list[str] | None = None,
    ) -> TableSchema:
        join_columns = list(join_columns or [])
        if primary_key and primary_key not in join_columns:
            join_columns.insert(0, primary_key)
        ts = TableSchema(name, primary_key, join_columns, list(filter_columns or []))
        self.tables[name] = ts
        return ts

    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> ForeignKey:
        fk = ForeignKey(table, column, ref_table, ref_column)
        self.foreign_keys.append(fk)
        ts = self.tables.get(table)
        if ts is not None and column not in ts.join_columns:
            ts.join_columns.append(column)
        return fk

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.table == table]

    def is_primary_key(self, table: str, column: str) -> bool:
        ts = self.tables.get(table)
        return ts is not None and ts.primary_key == column

    def is_join_column(self, table: str, column: str) -> bool:
        ts = self.tables.get(table)
        return ts is not None and column in ts.join_columns
