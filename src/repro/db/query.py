"""Query model: full conjunctive queries with equi-joins and predicates.

A query is a bag-semantics ``SELECT *`` over aliased relations, a set of
single-column equi-join conditions, and one predicate tree per alias
(Sec 2.1 of the paper).  Join *variables* are equivalence classes of
``alias.column`` pairs under the join conditions; the relation/variable
incidence graph decides Berge-acyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.predicates import Predicate

__all__ = ["ColumnRef", "Join", "Query"]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A column of an aliased relation, e.g. ``t.production_year``."""

    alias: str
    column: str

    def __repr__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class Join:
    """An equi-join condition ``left = right``."""

    left: ColumnRef
    right: ColumnRef

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class Query:
    """A conjunctive query.

    ``relations`` maps alias -> table name; ``joins`` is the equi-join list;
    ``predicates`` maps alias -> predicate tree (missing alias = no filter).
    """

    relations: dict[str, str] = field(default_factory=dict)
    joins: list[Join] = field(default_factory=list)
    predicates: dict[str, Predicate] = field(default_factory=dict)
    name: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_relation(self, alias: str, table: str) -> "Query":
        self.relations[alias] = table
        return self

    def add_join(self, a_alias: str, a_col: str, b_alias: str, b_col: str) -> "Query":
        self.joins.append(Join(ColumnRef(a_alias, a_col), ColumnRef(b_alias, b_col)))
        return self

    def add_predicate(self, alias: str, predicate: Predicate) -> "Query":
        self.predicates[alias] = predicate
        return self

    # ------------------------------------------------------------------
    # Structure analysis
    # ------------------------------------------------------------------
    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def variables(self) -> list[frozenset[ColumnRef]]:
        """Join variables: the equivalence classes of joined column refs."""
        uf = _UnionFind()
        for j in self.joins:
            uf.union(j.left, j.right)
        groups: dict = {}
        for j in self.joins:
            for ref in (j.left, j.right):
                groups.setdefault(uf.find(ref), set()).add(ref)
        return [frozenset(g) for g in sorted(groups.values(), key=lambda g: sorted(g))]

    def join_columns_of(self, alias: str) -> set[str]:
        """Columns of ``alias`` used in any join of this query."""
        out = set()
        for j in self.joins:
            for ref in (j.left, j.right):
                if ref.alias == alias:
                    out.add(ref.column)
        return out

    def incidence_graph(self) -> nx.MultiGraph:
        """Bipartite relation/variable incidence multigraph.

        Nodes are ``("rel", alias)`` and ``("var", index)``; one edge per
        (alias, column) participation.  The query is Berge-acyclic iff this
        graph is a forest.
        """
        g = nx.MultiGraph()
        for alias in self.relations:
            g.add_node(("rel", alias))
        for i, var in enumerate(self.variables()):
            g.add_node(("var", i))
            for ref in sorted(var):
                g.add_edge(("rel", ref.alias), ("var", i), column=ref.column)
        return g

    def is_berge_acyclic(self) -> bool:
        g = self.incidence_graph()
        if g.number_of_nodes() == 0:
            return True
        return g.number_of_edges() == g.number_of_nodes() - nx.number_connected_components(g)

    def join_graph(self) -> nx.Graph:
        """Relation-level join graph (edges between aliases sharing a join)."""
        g = nx.Graph()
        g.add_nodes_from(self.relations)
        for j in self.joins:
            if j.left.alias != j.right.alias:
                g.add_edge(j.left.alias, j.right.alias)
        return g

    def is_connected(self) -> bool:
        g = self.join_graph()
        return g.number_of_nodes() <= 1 or nx.is_connected(g)

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------
    def induced_subquery(self, aliases) -> "Query":
        """The subquery over a subset of aliases (joins within the subset)."""
        aliases = set(aliases)
        return Query(
            relations={a: t for a, t in self.relations.items() if a in aliases},
            joins=[
                j
                for j in self.joins
                if j.left.alias in aliases and j.right.alias in aliases
            ],
            predicates={a: p for a, p in self.predicates.items() if a in aliases},
        )

    def skeleton_key(self) -> tuple:
        """A hashable identity for the query *shape* (relations + joins).

        Predicate-independent: all predicate instantiations of one shape
        share a compiled skeleton in the FDSB engine.
        """
        rels = tuple(sorted(self.relations.items()))
        joins = tuple(
            sorted(
                (min(j.left, j.right), max(j.left, j.right)) for j in self.joins
            )
        )
        return (rels, joins)

    def cache_key(self) -> tuple:
        """A hashable identity for memoising estimates of this query."""
        rels, joins = self.skeleton_key()
        preds = tuple(sorted((a, repr(p)) for a, p in self.predicates.items()))
        return (rels, joins, preds)

    def __repr__(self) -> str:
        rels = ", ".join(f"{t} {a}" for a, t in sorted(self.relations.items()))
        joins = " AND ".join(repr(j) for j in self.joins)
        preds = " AND ".join(
            f"{a}:{p!r}" for a, p in sorted(self.predicates.items())
        )
        label = f"[{self.name}] " if self.name else ""
        return f"{label}FROM {rels} WHERE {joins}" + (f" AND {preds}" if preds else "")
