"""Exact query evaluation: the ground truth the paper measures against.

Two strategies:

* **Yannakakis counting** for Berge-acyclic queries: message passing over
  the relation/variable incidence tree with per-value COUNT aggregates.
  Linear in the data — never materialises an intermediate join, so even
  queries whose output has billions of tuples are counted exactly.
* **Materialisation** for cyclic queries (and any fallback): pairwise
  vectorised hash joins keeping only the columns later joins need, with a
  row cap to guard against runaway intermediates.

Both operate under bag semantics, matching Sec 2.1.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .database import Database
from .query import ColumnRef, Query

__all__ = ["Executor", "CardinalityOverflow"]


class CardinalityOverflow(RuntimeError):
    """Raised when a materialised intermediate exceeds the row cap."""


def _join_indices(left_keys: np.ndarray, right_keys: np.ndarray):
    """Row-index pairs ``(li, ri)`` with ``left_keys[li] == right_keys[ri]``."""
    order = np.argsort(right_keys, kind="stable")
    rs = right_keys[order]
    lo = np.searchsorted(rs, left_keys, side="left")
    hi = np.searchsorted(rs, left_keys, side="right")
    cnt = hi - lo
    total = int(cnt.sum())
    if total == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    li = np.repeat(np.arange(len(left_keys), dtype=np.int64), cnt)
    starts = np.repeat(lo, cnt)
    group_start = np.repeat(np.cumsum(cnt) - cnt, cnt)
    offsets = np.arange(total, dtype=np.int64) - group_start
    ri = order[starts + offsets]
    return li, ri


def _encode_composite(columns_a: list[np.ndarray], columns_b: list[np.ndarray]):
    """Encode multi-column keys of two sides into comparable int64 codes."""
    code_a = np.zeros(len(columns_a[0]), dtype=np.int64)
    code_b = np.zeros(len(columns_b[0]), dtype=np.int64)
    for col_a, col_b in zip(columns_a, columns_b):
        merged = np.concatenate((col_a, col_b))
        _, inverse = np.unique(merged, return_inverse=True)
        n = int(inverse.max()) + 1 if len(inverse) else 1
        code_a = code_a * n + inverse[: len(col_a)]
        code_b = code_b * n + inverse[len(col_a) :]
    return code_a, code_b


class _WeightMap:
    """A sparse value -> weight map backed by sorted key arrays."""

    __slots__ = ("keys", "weights")

    def __init__(self, keys: np.ndarray, weights: np.ndarray) -> None:
        self.keys = keys
        self.weights = weights

    @staticmethod
    def from_groupby(values: np.ndarray, weights: np.ndarray) -> "_WeightMap":
        if not len(values):
            return _WeightMap(values, np.asarray(weights, dtype=float))
        order = np.argsort(values, kind="stable")
        sv = values[order]
        sw = weights[order]
        boundaries = np.flatnonzero(np.concatenate(([True], sv[1:] != sv[:-1])))
        return _WeightMap(sv[boundaries], np.add.reduceat(sw, boundaries))

    def lookup(self, values: np.ndarray) -> np.ndarray:
        """Weights for ``values`` (0 where absent)."""
        if not len(self.keys) or not len(values):
            return np.zeros(len(values))
        idx = np.searchsorted(self.keys, values, side="left")
        idx_clipped = np.clip(idx, 0, len(self.keys) - 1)
        hit = self.keys[idx_clipped] == values
        return np.where(hit, self.weights[idx_clipped], 0.0)

    def multiply(self, other: "_WeightMap") -> "_WeightMap":
        """Pointwise product on the key intersection."""
        w = other.lookup(self.keys) * self.weights
        keep = w != 0
        return _WeightMap(self.keys[keep], w[keep])


class Executor:
    """Computes exact cardinalities of conjunctive queries."""

    def __init__(self, db: Database, materialize_cap: int = 20_000_000) -> None:
        self.db = db
        self.materialize_cap = materialize_cap

    # ------------------------------------------------------------------
    def cardinality(self, query: Query) -> int:
        """Exact output cardinality of the query (bag semantics)."""
        if not query.relations:
            return 0
        if query.is_berge_acyclic():
            return int(round(self._count_acyclic(query)))
        return self._count_materialize(query)

    def filtered_cardinality(self, table_name: str, predicate) -> int:
        table = self.db.table(table_name)
        return int(np.count_nonzero(table.filter_mask(predicate)))

    # ------------------------------------------------------------------
    # Yannakakis counting over the incidence forest
    # ------------------------------------------------------------------
    def _filtered_join_columns(self, query: Query, alias: str):
        """Filtered join-column arrays of one alias plus its row count."""
        table = self.db.table(query.relations[alias])
        mask = table.filter_mask(query.predicates.get(alias))
        needed = query.join_columns_of(alias)
        return {c: table.column(c)[mask] for c in needed}, int(mask.sum())

    def _count_acyclic(self, query: Query) -> float:
        graph = query.incidence_graph()
        columns: dict[str, dict[str, np.ndarray]] = {}
        row_counts: dict[str, int] = {}
        for alias in query.relations:
            cols, n = self._filtered_join_columns(query, alias)
            columns[alias] = cols
            row_counts[alias] = n
        total = 1.0
        for component in nx.connected_components(graph):
            root = next(n for n in sorted(component) if n[0] == "rel")
            total *= self._count_at_root(graph, columns, row_counts, root)
        return total

    def _var_message(self, graph, columns, parent_rel, var_node) -> _WeightMap | None:
        """Combine the messages of all child relations under ``var_node``."""
        combined: _WeightMap | None = None
        for child in graph.neighbors(var_node):
            if child == parent_rel:
                continue
            msg = self._rel_message(graph, columns, child, parent_var=var_node)
            combined = msg if combined is None else combined.multiply(msg)
        return combined

    def _rel_message(self, graph, columns, rel_node, parent_var) -> _WeightMap:
        """Per-parent-variable-value subtree counts rooted at a relation."""
        alias = rel_node[1]
        cols = columns[alias]
        parent_col = self._edge_column(graph, rel_node, parent_var)
        weights = np.ones(len(cols[parent_col]))
        for var_node in set(graph.neighbors(rel_node)):
            if var_node == parent_var:
                continue
            message = self._var_message(graph, columns, rel_node, var_node)
            if message is None:
                continue
            col = self._edge_column(graph, rel_node, var_node)
            weights = weights * message.lookup(cols[col])
        return _WeightMap.from_groupby(cols[parent_col], weights)

    def _count_at_root(self, graph, columns, row_counts, rel_node) -> float:
        alias = rel_node[1]
        cols = columns[alias]
        neighbors = sorted(set(graph.neighbors(rel_node)))
        if not neighbors:
            return float(row_counts[alias])
        first_col = self._edge_column(graph, rel_node, neighbors[0])
        weights = np.ones(len(cols[first_col]))
        for var_node in neighbors:
            message = self._var_message(graph, columns, rel_node, var_node)
            if message is None:
                continue
            col = self._edge_column(graph, rel_node, var_node)
            weights = weights * message.lookup(cols[col])
        return float(weights.sum())

    @staticmethod
    def _edge_column(graph, rel_node, var_node) -> str:
        # In a forest there is exactly one parallel edge between two nodes.
        data = graph.get_edge_data(rel_node, var_node)
        return next(iter(data.values()))["column"]

    # ------------------------------------------------------------------
    # Materialisation fallback (cyclic queries)
    # ------------------------------------------------------------------
    def _count_materialize(self, query: Query) -> int:
        order = self._materialize_order(query)
        frame: dict[ColumnRef, np.ndarray] = {}
        joined: set[str] = set()
        frame_len = 0
        for alias in order:
            table = self.db.table(query.relations[alias])
            mask = table.filter_mask(query.predicates.get(alias))
            cols_needed = query.join_columns_of(alias)
            new_cols = {ColumnRef(alias, c): table.column(c)[mask] for c in cols_needed}
            # Intra-alias equality conditions act as extra filters.
            for j in query.joins:
                if j.left.alias == alias and j.right.alias == alias:
                    eq = new_cols[j.left] == new_cols[j.right]
                    new_cols = {ref: arr[eq] for ref, arr in new_cols.items()}
            new_len = int(mask.sum()) if not cols_needed else len(next(iter(new_cols.values())))
            if not frame:
                frame = new_cols
                frame_len = new_len
                joined.add(alias)
                continue
            conditions = [
                j
                for j in query.joins
                if (j.left.alias == alias and j.right.alias in joined)
                or (j.right.alias == alias and j.left.alias in joined)
            ]
            if not conditions:
                raise CardinalityOverflow(
                    f"query {query.name or query!r} is disconnected; refusing cross product"
                )
            frame_keys, new_keys = [], []
            for j in conditions:
                new_ref = j.left if j.left.alias == alias else j.right
                old_ref = j.right if j.left.alias == alias else j.left
                frame_keys.append(frame[old_ref])
                new_keys.append(new_cols[new_ref])
            code_f, code_n = _encode_composite(frame_keys, new_keys)
            fi, ni = _join_indices(code_f, code_n)
            if len(fi) > self.materialize_cap:
                raise CardinalityOverflow(
                    f"intermediate of {len(fi)} rows exceeds cap {self.materialize_cap}"
                )
            frame = {ref: arr[fi] for ref, arr in frame.items()}
            frame.update({ref: arr[ni] for ref, arr in new_cols.items()})
            frame_len = len(fi)
            joined.add(alias)
        return frame_len

    @staticmethod
    def _materialize_order(query: Query) -> list[str]:
        """BFS order over the join graph starting from an arbitrary alias."""
        g = query.join_graph()
        start = sorted(query.relations)[0]
        order = list(nx.bfs_tree(g, start)) if g.number_of_edges() else [start]
        for alias in sorted(query.relations):
            if alias not in order:
                order.append(alias)
        return order
