"""Column-store table: the storage layer of the relational substrate.

A :class:`Table` holds named numpy columns of equal length.  Numeric
columns use int64/float64 arrays; string columns use object arrays.  All
filtering and projection is vectorised.
"""

from __future__ import annotations

import numpy as np

from ..core.predicates import Predicate

__all__ = ["Table"]


class Table:
    """An immutable-by-convention column-store table."""

    def __init__(self, name: str, columns: dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r} columns have differing lengths: {lengths}")
        self.name = name
        self.columns: dict[str, np.ndarray] = {
            k: np.asarray(v) for k, v in columns.items()
        }
        self.num_rows = lengths.pop()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, cols={list(self.columns)})"

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def is_string_column(self, name: str) -> bool:
        return self.columns[name].dtype == object

    # ------------------------------------------------------------------
    def filter_mask(self, predicate: Predicate | None) -> np.ndarray:
        """Boolean row mask for a predicate (all-true for ``None``)."""
        if predicate is None:
            return np.ones(self.num_rows, dtype=bool)
        return predicate.evaluate(self.columns)

    def filter(self, predicate: Predicate | None) -> "Table":
        """A new table holding only the rows matching ``predicate``."""
        if predicate is None:
            return self
        mask = self.filter_mask(predicate)
        return Table(self.name, {k: v[mask] for k, v in self.columns.items()})

    def select(self, names: list[str]) -> "Table":
        return Table(self.name, {n: self.columns[n] for n in names})

    def take(self, row_indices: np.ndarray) -> "Table":
        return Table(self.name, {k: v[row_indices] for k, v in self.columns.items()})

    def sample_rows(self, n: int, rng: np.random.Generator) -> "Table":
        if n >= self.num_rows:
            return self
        idx = rng.choice(self.num_rows, size=n, replace=False)
        return self.take(idx)

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint of the column data."""
        total = 0
        for arr in self.columns.values():
            if arr.dtype == object:
                total += sum(len(str(v)) for v in arr.tolist()) + 8 * len(arr)
            else:
                total += arr.nbytes
        return total
